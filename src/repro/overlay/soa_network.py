"""Struct-of-arrays flood engine: batched vectorized DES backend.

The message-level engine (:mod:`repro.overlay.network`) pays one Python
heap event per message delivery; at n >= 100k the flood dominates and
per-event dispatch caps throughput around tens of thousands of events
per second. This module replays the *same* protocol semantics with peer
state in numpy arrays indexed by peer id and flooding advanced in
*waves*: every query delivery sharing one exact virtual timestamp is
processed as one vectorized step (dedup mask -> token-bucket clamp ->
CSR gather/scatter fan-out). The binary-heap engine is retained for the
sparse control plane: workload issue timers, attack batches, the
per-minute window roll, and DD-POLICE conclusion timeouts.

Equivalence contract (enforced by ``tests/property/test_soa_equivalence.py``)
-----------------------------------------------------------------------------
With churn/faults/bandwidth off and ``hop_latency_jitter_s == 0`` the
wave schedule reproduces the message engine's delivery timeline exactly:
every hop adds the same ``hop_latency_s`` float, so all copies of one
TTL generation share one timestamp, and per-receiver arrival order is
identical to the DES event order (one forwarder event sends one query
to many *distinct* receivers, so reordering inside a forwarder's send
loop never permutes any single receiver's arrival sequence). Dedup
winners, reverse routes, token-bucket grants, drop counts, per-minute
rows, and S(t) therefore match the message DES float-for-float.

Known divergences, all confined to DD-POLICE runs:

* the SoA engine sends no control-plane messages (exchange lists,
  liveness pings, Neighbor_Traffic, Bye), so ``messages_delivered`` and
  ``bytes_transferred`` exclude the control plane (compare
  ``query_messages``/``hit_messages`` instead);
* buddy groups are derived from *current* alive neighbor sets rather
  than the directory's last-broadcast snapshot. The two agree whenever
  the attack starts after the directory has converged (first exchange
  broadcasts complete by t = exchange start delay <= 120 s) and no edge
  was cut in the preceding exchange period.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, TYPE_CHECKING, Tuple

import numpy as np

from repro.attack.cheating import CheatStrategy
from repro.core.indicators import NeighborReport, indicators_from_reports
from repro.errors import ConfigError
from repro.evidence.hashing import mix64
from repro.fluid.flows import build_edge_arrays, edge_slice_index
from repro.metrics.accounting import QueryAccounting
from repro.metrics.collectors import _SeriesMixin
from repro.metrics.errors import ErrorCounts, Judgment, JudgmentLog
from repro.overlay.content import ContentCatalog
from repro.overlay.ids import PeerId
from repro.overlay.message import GNUTELLA_HEADER_SIZE
from repro.overlay.topology import TopologyConfig, generate_topology
from repro.simkit.engine import Simulator
from repro.simkit.rng import RngRegistry
from repro.simkit.soa import Int64Map, TokenBucketArray
from repro.simkit.timers import PeriodicTask

if TYPE_CHECKING:  # pragma: no cover - type-only; avoids a layering cycle
    from repro.experiments.runner import DESConfig

#: Route-table sentinel: the keyed peer originated the query.
ORIGIN = -2
#: Route lookup miss (seen-set entry expired or never existed).
MISSING = -3

#: QueryHit wire size: 23-byte header + 11 + 40 * result_count(1) + 16.
HIT_SIZE = 90


def query_size_bytes(keywords: Tuple[str, ...]) -> int:
    """Wire size of a Query: header + min_speed(2) + NUL search string."""
    payload = 2 + sum(len(k) for k in keywords) + max(0, len(keywords) - 1) + 1
    return GNUTELLA_HEADER_SIZE + payload


@dataclass
class SoaStats:
    """Aggregate counters, aligned with :class:`NetworkStats` field names.

    ``control_messages`` stays 0 by construction: the SoA engine models
    no control plane.
    """

    messages_delivered: int = 0
    bytes_transferred: int = 0
    query_messages: int = 0
    hit_messages: int = 0
    control_messages: int = 0
    queries_dropped_capacity: int = 0
    # Extras (sums of the DES per-peer counters, for the oracle tests).
    queries_dropped_duplicate: int = 0
    hits_dropped_no_route: int = 0
    queries_issued: int = 0
    attack_queries_sent: int = 0
    edges_cut: int = 0


class SoaCollector(_SeriesMixin):
    """Read-side facade over the accounting rows (collector duck type)."""

    def __init__(self, accounting: QueryAccounting) -> None:
        self._accounting = accounting

    @property
    def minutes(self):
        return self._accounting.rows


@dataclass
class SoaRun:
    """A finished SoA run with the surfaces result extraction needs."""

    config: "DESConfig"
    n: int
    stats: SoaStats
    accounting: QueryAccounting
    collector: SoaCollector
    judgments: Optional[JudgmentLog]
    bad_peers: Set[PeerId] = field(default_factory=set)
    wall_s: float = 0.0
    heap_events: int = 0
    waves_processed: int = 0
    #: Bytes of per-minute traffic-evidence state (exact windows or
    #: count-min cells) at the end of the run.
    evidence_bytes: int = 0

    @property
    def deliveries(self) -> int:
        return self.stats.messages_delivered

    def error_counts(self) -> ErrorCounts:
        if self.judgments is None:
            raise ConfigError("run had no defense; no judgments recorded")
        return self.judgments.error_counts(set(self.bad_peers))


def _reject_unsupported(config: "DESConfig") -> None:
    """Refuse configurations whose semantics the wave engine cannot honor.

    Mirrors the fluid backend's policy: fail loudly rather than run a
    simulation that silently ignores part of the configuration.
    """
    if config.churn.enabled:
        raise ConfigError("backend 'des-soa' cannot simulate churn (DES only)")
    if config.faults.enabled:
        raise ConfigError(
            "backend 'des-soa' cannot simulate fault injection (DES only)"
        )
    if config.defense not in ("none", "ddpolice"):
        raise ConfigError(
            f"backend 'des-soa' has no {config.defense!r} defense (DES only)"
        )
    if config.adaptive.strategy != "static":
        raise ConfigError(
            f"backend 'des-soa' cannot simulate adaptive strategy "
            f"{config.adaptive.strategy!r} (DES only)"
        )
    if config.defense == "ddpolice":
        if config.cheat_strategy is not CheatStrategy.SILENT:
            raise ConfigError(
                f"backend 'des-soa' only models cheat_strategy 'silent' "
                f"under ddpolice, got {config.cheat_strategy!r} (DES only)"
            )
        if config.police.radius != 1:
            raise ConfigError("backend 'des-soa' requires police radius 1")
        if not config.police.assume_zero_on_missing:
            raise ConfigError(
                "backend 'des-soa' requires assume_zero_on_missing=True"
            )
        if getattr(config.police, "report_quorum", 0):
            raise ConfigError("backend 'des-soa' does not model report quorums")
        if getattr(config.police, "report_retry_limit", 0):
            raise ConfigError("backend 'des-soa' does not model report retries")
    if config.network.evidence.sketched:
        raise ConfigError(
            "backend 'des-soa' keys its seen-set by integer qid (Int64Map, "
            "already O(in-flight) memory); Bloom dedup applies to the "
            "message engines only. Set police.evidence.backend='sketch' "
            "for sketched traffic windows instead."
        )
    if config.network.hop_latency_jitter_s != 0.0:
        raise ConfigError(
            "backend 'des-soa' requires hop_latency_jitter_s=0 (wave "
            "batching relies on shared per-generation timestamps)"
        )
    if config.network.bandwidth_enabled:
        raise ConfigError("backend 'des-soa' has no bandwidth model (DES only)")
    if config.metrics_mode != "incremental":
        raise ConfigError("backend 'des-soa' supports metrics_mode 'incremental' only")


class SoaFloodEngine:
    """One configured run of the wave-batched flood simulation."""

    def __init__(self, config: "DESConfig") -> None:
        _reject_unsupported(config)
        self.config = config
        n = config.n
        self.n = n
        self.stats = SoaStats()
        rngs = RngRegistry(config.seed)

        # -- topology -> CSR edge arrays --------------------------------
        topo_cfg = config.topology or TopologyConfig(n=n, seed=config.seed)
        if topo_cfg.n != n:
            raise ConfigError(
                f"topology n={topo_cfg.n} does not match config n={n}"
            )
        topology = generate_topology(topo_cfg)
        adjacency = {u: vs for u, vs in enumerate(topology.adjacency)}
        src, dst, rev = build_edge_arrays(adjacency)
        self._src = src.astype(np.int64)
        self._dst = dst.astype(np.int64)
        self._rev = rev.astype(np.int64)
        self._indptr = edge_slice_index(self._src, n)
        self._E = len(src)
        #: (src, dst)-packed keys; sorted because edges are (src, dst)-sorted.
        self._ekeys = self._src * n + self._dst
        self.edge_alive = np.ones(self._E, dtype=bool)
        self._alive_deg = np.diff(self._indptr).astype(np.int64)

        # DES peers keep neighbors in a Python set, and issue_query /
        # _on_query emit sends in its *iteration order*. Which same-depth
        # forwarder fires first decides the dedup winner at the next hop
        # (= route parent = the neighbor excluded from that peer's
        # fan-out), so per-edge counters only match if the batched
        # fan-out emits in the same order. Replaying the identical
        # insertions into an identical set reproduces the (deterministic)
        # order; edge cuts never reorder survivors, matching set.discard.
        proto = np.empty(self._E, dtype=np.int64)
        for u in range(n):
            a, b = int(self._indptr[u]), int(self._indptr[u + 1])
            if a == b:
                continue
            replay = {PeerId(v) for v in topology.adjacency[u]}
            order = np.fromiter(
                (p.value for p in replay), dtype=np.int64, count=b - a
            )
            proto[a:b] = a + np.searchsorted(self._dst[a:b], order)
        self._proto_edge = proto

        # -- content ----------------------------------------------------
        self.content = ContentCatalog(config.content, n)
        holder_keys: List[int] = []
        for peer, objs in self.content.peer_objects.items():
            for obj in objs:
                holder_keys.append(obj * n + peer)
        self._holder_keys = np.array(sorted(holder_keys), dtype=np.int64)

        # -- per-peer / per-edge dynamic state --------------------------
        net = config.network
        self._hop = net.hop_latency_s
        self._default_ttl = net.default_ttl
        self.bucket = TokenBucketArray(n, net.processing_qpm_good)
        ev = config.police.evidence
        self._sketched = ev.sketched
        if self._sketched:
            # Count-min traffic evidence: one (depth, width) int32 sketch
            # per direction replaces the two length-E minute windows.
            # Updates are plain (non-conservative) count-min -- batched
            # ``np.add.at`` cannot do the read-modify-min of conservative
            # update -- which still never undercounts, so no attacker
            # edge is ever missed; collisions only add false suspicion.
            self._cm_w = ev.cm_width
            self._cm_d = ev.cm_depth
            self._cm_out = np.zeros((ev.cm_depth, ev.cm_width), dtype=np.int32)
            self._cm_in = np.zeros((ev.cm_depth, ev.cm_width), dtype=np.int32)
            self.win_out: Optional[np.ndarray] = None
            self.win_in: Optional[np.ndarray] = None
        else:
            self.win_out = np.zeros(self._E, dtype=np.int64)
            self.win_in = np.zeros(self._E, dtype=np.int64)
        # Seen-set + reverse routes; epoch is sized to 3x the one-way
        # flood depth so entries (which survive 1-2 epochs) always outlive
        # a query's full out-and-back lifetime of 2*ttl*hop.
        lifetime = 2.0 * self._default_ttl * self._hop
        self.seen = Int64Map(
            initial_log2_cap=14, epoch_s=max(0.5, 1.5 * lifetime)
        )
        self._pending_seen: List[np.ndarray] = []

        # -- metrics ----------------------------------------------------
        # retire_records=False switches off per-query key tracking (the
        # SoA engine keeps no QueryRecord table to retire); the emitted
        # rows are identical either way.
        self.accounting = QueryAccounting(
            grace_minutes=net.metrics_grace_minutes, retire_records=False
        )
        self.collector = SoaCollector(self.accounting)
        #: qid -> (window, issued_at, is_attack) for queries that can be
        #: answered (workload-issued; bogus attack batches never match).
        self._meta: Dict[int, Tuple[int, float, bool]] = {}
        self._next_qid = 0

        # -- simulator + timers -----------------------------------------
        self.sim = Simulator()
        self.minute_index = 0
        self._minute_task = PeriodicTask(
            self.sim,
            net.minute_window_s,
            self._roll_minute,
            start_delay=net.minute_window_s,
            priority=-1,
        )
        #: wave buffers: timestamp -> (query chunks, hit chunks). A chunk
        #: is a tuple of parallel arrays appended in DES event order.
        self._waves: Dict[float, Tuple[list, list]] = {}
        self.waves_processed = 0

        # -- workload ----------------------------------------------------
        self._wl_rng = rngs.stream("workload")
        self._wl_mean_gap = 60.0 / config.workload.queries_per_minute
        self._wl_max = config.workload.max_queries_total
        self._wl_issued = 0
        self._origin_mask = np.zeros(n, dtype=bool)

        # -- attack ------------------------------------------------------
        self.bad_peers: Set[PeerId] = set()
        self._bad_mask = np.zeros(n, dtype=bool)
        self._agents: List[dict] = []
        if config.num_agents > 0:
            atk_rng = rngs.stream("attack")
            chosen = atk_rng.sample(list(range(n)), config.num_agents)
            for pid in chosen:
                atk_rng.getrandbits(32)  # per-agent rng seed draw (unused here)
                self._agents.append({"pid": pid, "carry": 0.0, "nonce": 0})
            self.bad_peers = {PeerId(p) for p in chosen}
            self._bad_mask[chosen] = True
            self.sim.schedule_at(config.attack_start_s, self._attack_launch)

        # -- defense -----------------------------------------------------
        self.judgments: Optional[JudgmentLog] = None
        if config.defense == "ddpolice":
            self.judgments = JudgmentLog()

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------
    def _edge_ids(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Edge ids for directed pairs (u, v); pairs must be real edges."""
        return np.searchsorted(self._ekeys, u * self.n + v)

    def _cm_columns(self, eids: np.ndarray, row: int) -> np.ndarray:
        """Sketch columns of ``eids`` in ``row`` (stateless: no column
        table is stored, so evidence memory is the cells alone)."""
        return mix64(eids.astype(np.uint64), seed=row + 1) % np.uint64(self._cm_w)

    def _count_out(self, eids: np.ndarray) -> None:
        """Count one outgoing query on each edge id (repeats allowed)."""
        if not len(eids):
            return
        if self._sketched:
            for r in range(self._cm_d):
                np.add.at(self._cm_out[r], self._cm_columns(eids, r), 1)
        else:
            np.add.at(self.win_out, eids, 1)

    def _count_in(self, eids: np.ndarray) -> None:
        """Count one incoming query on each edge id (repeats allowed)."""
        if not len(eids):
            return
        if self._sketched:
            for r in range(self._cm_d):
                np.add.at(self._cm_in[r], self._cm_columns(eids, r), 1)
        else:
            np.add.at(self.win_in, eids, 1)

    def _cm_estimate_all(self, cm: np.ndarray) -> np.ndarray:
        """Row-min estimates for every edge id, materialized as int64.

        The police round then runs unchanged over these (possibly
        overestimated, never underestimated) per-edge minute counts.
        """
        eids = np.arange(self._E, dtype=np.uint64)
        est = cm[0][self._cm_columns(eids, 0)].astype(np.int64)
        for r in range(1, self._cm_d):
            est = np.minimum(est, cm[r][self._cm_columns(eids, r)])
        return est

    def evidence_bytes(self) -> int:
        """Bytes of per-minute traffic-evidence state (both directions)."""
        if self._sketched:
            return int(self._cm_out.nbytes + self._cm_in.nbytes)
        return int(self.win_out.nbytes + self.win_in.nbytes)

    def _edge_id(self, u: int, v: int) -> int:
        return int(np.searchsorted(self._ekeys, u * self.n + v))

    def _alive_out_edges(self, p: int) -> np.ndarray:
        a, b = int(self._indptr[p]), int(self._indptr[p + 1])
        return a + np.flatnonzero(self.edge_alive[a:b])

    def _proto_out_edges(self, p: int) -> np.ndarray:
        """Alive out-edges of ``p`` in DES neighbor-set iteration order."""
        a, b = int(self._indptr[p]), int(self._indptr[p + 1])
        e = self._proto_edge[a:b]
        return e[self.edge_alive[e]]

    def _wave_at(self, t: float) -> Tuple[list, list]:
        wave = self._waves.get(t)
        if wave is None:
            wave = self._waves[t] = ([], [])
            # Priority 1: same-time heap events (issues, attack batches,
            # police conclusions at 0; minute roll at -1) fire first,
            # matching the DES seq order of in-flight deliveries.
            self.sim.schedule_at(t, self._process_wave, t, priority=1)
        return wave

    def _push_queries(
        self,
        t: float,
        qid: np.ndarray,
        dst: np.ndarray,
        src: np.ndarray,
        ttl: np.ndarray,
        obj: np.ndarray,
        size: np.ndarray,
    ) -> None:
        self._wave_at(t)[0].append((qid, dst, src, ttl, obj, size))

    def _push_hits(self, t: float, qid: np.ndarray, at: np.ndarray) -> None:
        self._wave_at(t)[1].append((qid, at))

    # ------------------------------------------------------------------
    # workload (good queries; replicates QueryWorkload's rng sequence)
    # ------------------------------------------------------------------
    def start_workload(self) -> None:
        rate = 1.0 / self._wl_mean_gap
        rng = self._wl_rng
        self.sim.schedule_bulk(
            (rng.expovariate(rate), self._issue, pid) for pid in range(self.n)
        )

    def _issue(self, pid: int) -> None:
        if self._wl_max is not None and self._wl_issued >= self._wl_max:
            return
        eids = self._proto_out_edges(pid)
        if len(eids):
            obj = self.content.sample_object(self._wl_rng)
            keywords = self.content.keywords_for(obj)
            size = query_size_bytes(keywords)
            now = self.sim.now
            qid = self._next_qid
            self._next_qid += 1
            is_attack = bool(self._origin_mask[pid])
            window = self.accounting.on_issued(None, is_attack)
            self._meta[qid] = (window, now, is_attack)
            self._pending_seen.append(
                np.array([qid * self.n + pid], dtype=np.int64)
            )
            self._count_out(eids)
            targets = self._dst[eids]
            k = len(targets)
            self._push_queries(
                now + self._hop,
                np.full(k, qid, dtype=np.int64),
                targets,
                np.full(k, pid, dtype=np.int64),
                np.full(k, self._default_ttl, dtype=np.int64),
                np.full(k, obj, dtype=np.int64),
                np.full(k, size, dtype=np.int64),
            )
            self._wl_issued += 1
            self.stats.queries_issued += 1
        self.sim.schedule_in(
            self._wl_rng.expovariate(1.0 / self._wl_mean_gap), self._issue, pid
        )

    # ------------------------------------------------------------------
    # attack (replicates AttackScenario/DDoSAgent batch arithmetic)
    # ------------------------------------------------------------------
    def _attack_launch(self) -> None:
        # Origins register at launch (not construction): agent peers'
        # earlier workload queries keep their GOOD class.
        for agent in self._agents:
            self._origin_mask[agent["pid"]] = True
        # The first batch fires at launch time but *after* any same-time
        # workload issues, like the DES agents' schedule_in(0) batches.
        self.sim.schedule_at(self.sim.now, self._attack_batch)

    def _attack_batch(self) -> None:
        rate_qpm = self.config.attack_rate_qpm
        now = self.sim.now
        n = self.n
        deliver_at = now + self._hop
        for agent in self._agents:
            pid = agent["pid"]
            eids = self._alive_out_edges(pid)
            if not len(eids):
                continue  # carry/nonce untouched, exactly like the DES agent
            per_batch = rate_qpm * 1.0 / 60.0 + agent["carry"]
            count = int(per_batch)
            agent["carry"] = per_batch - count
            if count == 0:
                continue
            nonce0 = agent["nonce"]
            agent["nonce"] = nonce0 + count
            nonces = np.arange(nonce0 + 1, nonce0 + count + 1, dtype=np.int64)
            # Query size: header + min_speed + "bogus x{pid}n{nonce}" NUL.
            # 23 + (2 + 5 + (2 + d(pid) + d(nonce)) + 1 + 1)
            digits = np.ones(count, dtype=np.int64)
            p10 = 10
            while p10 <= int(nonces[-1]):
                digits += nonces >= p10
                p10 *= 10
            sizes = 34 + len(str(pid)) + digits
            qid0 = self._next_qid
            self._next_qid = qid0 + count
            qids = np.arange(qid0, qid0 + count, dtype=np.int64)
            self.accounting.on_issued_many(count, is_attack=True)
            self._pending_seen.append(qids * n + pid)
            # Round-robin over dst-sorted alive neighbors (the DES agent
            # sorts its neighbor set by peer id).
            te = np.resize(eids, count)
            self._count_out(te)
            self._push_queries(
                deliver_at,
                qids,
                self._dst[te],
                np.full(count, pid, dtype=np.int64),
                np.full(count, self._default_ttl, dtype=np.int64),
                np.full(count, -1, dtype=np.int64),
                sizes,
            )
            self.stats.attack_queries_sent += count
            self.stats.queries_issued += count
        self.sim.schedule_in(1.0, self._attack_batch)

    # ------------------------------------------------------------------
    # wave processing
    # ------------------------------------------------------------------
    def _flush_pending_seen(self) -> None:
        if not self._pending_seen:
            return
        keys = np.concatenate(self._pending_seen)
        self._pending_seen.clear()
        self.seen.insert_new(keys, np.full(len(keys), ORIGIN, dtype=np.int64))

    def _process_wave(self, t: float) -> None:
        qchunks, hchunks = self._waves.pop(t)
        self._flush_pending_seen()
        self.seen.maybe_rotate(t)
        if qchunks:
            self._process_queries(t, qchunks)
        if hchunks:
            self._process_hits(t, hchunks)
        self.waves_processed += 1

    def _process_queries(self, t: float, chunks: list) -> None:
        if len(chunks) == 1:
            qid, dst, src, ttl, obj, size = chunks[0]
        else:
            qid, dst, src, ttl, obj, size = (
                np.concatenate([c[i] for c in chunks]) for i in range(6)
            )
        m = len(qid)
        stats = self.stats
        stats.messages_delivered += m
        stats.bytes_transferred += int(size.sum())
        stats.query_messages += m

        # In_query window stamps: receiver-side, gated on the connection
        # still existing (in-flight copies on a cut edge deliver but do
        # not resurrect the counter key).
        e_in = self._edge_ids(src, dst)
        alive = self.edge_alive[e_in]
        self._count_in(e_in[alive])

        # Duplicate suppression: within-wave first occurrence, then the
        # cross-wave seen-set. Route = arrival neighbor of the first
        # sight, recorded even for copies the capacity clamp later drops.
        keys = qid * self.n + dst
        uniq_keys, first_idx = np.unique(keys, return_index=True)
        fresh = self.seen.insert_new(uniq_keys, src[first_idx])
        keep = np.sort(first_idx[fresh])  # back to arrival order
        stats.queries_dropped_duplicate += m - len(keep)
        if not len(keep):
            return
        qid, dst, src, ttl, obj, size = (
            a[keep] for a in (qid, dst, src, ttl, obj, size)
        )

        # Capacity clamp: per receiving peer, the first `granted` fresh
        # arrivals (in arrival order) consume tokens; the rest drop.
        order = np.argsort(dst, kind="stable")
        ds = dst[order]
        peers, counts = np.unique(ds, return_counts=True)
        granted = self.bucket.grant(peers, counts, t)
        starts = np.cumsum(counts) - counts
        rank = np.arange(len(ds)) - np.repeat(starts, counts)
        passed = np.empty(len(ds), dtype=bool)
        passed[order] = rank < np.repeat(granted, counts)
        dropped = len(ds) - int(passed.sum())
        stats.queries_dropped_capacity += dropped
        if dropped == len(ds):
            return

        # Local content match -> QueryHit back along the arrival edge.
        cand = passed & (obj >= 0)
        if cand.any():
            hkeys = obj[cand] * self.n + dst[cand]
            pos = np.searchsorted(self._holder_keys, hkeys)
            pos[pos >= len(self._holder_keys)] = 0 if len(self._holder_keys) else 0
            found = (
                self._holder_keys[pos] == hkeys
                if len(self._holder_keys)
                else np.zeros(len(hkeys), dtype=bool)
            )
            if found.any():
                self._push_hits(
                    t + self._hop, qid[cand][found], src[cand][found]
                )

        # CSR fan-out of the survivors with TTL left: forward to every
        # alive neighbor except the arrival edge's source.
        fwd = passed & (ttl > 1)
        if not fwd.any():
            return
        f_idx = np.flatnonzero(fwd)
        u = dst[f_idx]
        lens = self._indptr[u + 1] - self._indptr[u]
        total = int(lens.sum())
        if total == 0:
            return
        first = np.cumsum(lens) - lens
        rel = np.arange(total) - np.repeat(first, lens)
        # Map row positions through the protocol-order permutation so
        # each owner's forwards are emitted in DES set-iteration order.
        e = self._proto_edge[np.repeat(self._indptr[u], lens) + rel]
        owner = np.repeat(f_idx, lens)
        ok = self.edge_alive[e] & (self._dst[e] != src[owner])
        if not ok.any():
            return
        e = e[ok]
        owner = owner[ok]
        self._count_out(e)
        self._push_queries(
            t + self._hop,
            qid[owner],
            self._dst[e],
            self._src[e],
            ttl[owner] - 1,
            obj[owner],
            size[owner],
        )

    def _process_hits(self, t: float, chunks: list) -> None:
        if len(chunks) == 1:
            qid, at = chunks[0]
        else:
            qid = np.concatenate([c[0] for c in chunks])
            at = np.concatenate([c[1] for c in chunks])
        m = len(qid)
        stats = self.stats
        stats.messages_delivered += m
        stats.bytes_transferred += HIT_SIZE * m
        stats.hit_messages += m

        back = self.seen.lookup(qid * self.n + at, missing=MISSING)
        is_origin = back == ORIGIN
        if is_origin.any():
            meta = self._meta
            for q in qid[is_origin].tolist():
                rec = meta.pop(q, None)
                if rec is not None:
                    window, issued_at, is_attack = rec
                    self.accounting.on_first_response(
                        window, is_attack, t - issued_at
                    )
        lost = back == MISSING
        stats.hits_dropped_no_route += int(lost.sum())
        route = ~(is_origin | lost)
        if not route.any():
            return
        q2 = qid[route]
        a2 = at[route]
        b2 = back[route]
        alive = self.edge_alive[self._edge_ids(a2, b2)]
        stats.hits_dropped_no_route += int((~alive).sum())
        if alive.any():
            self._push_hits(t + self._hop, q2[alive], b2[alive])

    # ------------------------------------------------------------------
    # minute roll + DD-POLICE
    # ------------------------------------------------------------------
    def _roll_minute(self) -> None:
        self.minute_index += 1
        if self._sketched:
            # Materialize per-edge row-min estimates into transient
            # arrays so the police round below runs unchanged, then
            # reset the sketches for the next minute window.
            prev_out = self._cm_estimate_all(self._cm_out)
            prev_in = self._cm_estimate_all(self._cm_in)
            self._cm_out.fill(0)
            self._cm_in.fill(0)
        else:
            prev_out = self.win_out
            prev_in = self.win_in
            self.win_out = np.zeros(self._E, dtype=np.int64)
            self.win_in = np.zeros(self._E, dtype=np.int64)
        self.last_minute_out = prev_out
        self.last_minute_in = prev_in
        self.accounting.on_minute_rolled(
            self.sim.now,
            self.stats.messages_delivered,
            self.stats.bytes_transferred,
        )
        if self.judgments is not None:
            self._police_round(prev_out, prev_in)

    def _police_round(self, prev_out: np.ndarray, prev_in: np.ndarray) -> None:
        """One suspicion/evidence round over the just-completed minute.

        Edge e = (j -> u) crossing the warning threshold makes observer u
        open an investigation of suspect j at the roll. Good investigators
        push Neighbor_Traffic reports to the whole buddy group (arriving
        one hop later), every member that receives one joins, and joiners'
        own reports arrive a second hop later; SILENT attackers
        investigate and judge but never report. An investigation
        concludes the moment its last expected report arrives -- one hop
        after the roll when every other member is a direct observer, two
        hops when a joiner's report is needed -- and only falls back to
        the collection-window timer (+5 s for directs, one hop later for
        joiners) when a SILENT member's report never comes. These are the
        same decision instants the message engine's early-completion path
        (``Investigation.complete``) produces.
        """
        police = self.config.police
        crossing = np.flatnonzero(
            self.edge_alive & (prev_in > police.warning_threshold_qpm)
        )
        if not len(crossing):
            return
        now = self.sim.now
        report_at = now + self._hop  # direct observers' reports land here
        by_time: Dict[float, List[Tuple[int, int, float, float, bool]]] = {}
        suspects = np.unique(self._src[crossing])
        for j in suspects.tolist():
            observers = set(
                self._dst[crossing[self._src[crossing] == j]].tolist()
            )
            good_direct = any(not self._bad_mask[u] for u in observers)
            nbrs = self._dst[self._alive_out_edges(j)].tolist()
            # Without a good direct observer no reports circulate, so
            # nobody joins: only the directs investigate (on silence).
            members = nbrs if good_direct else sorted(observers)
            for u in members:
                own_out = int(prev_out[self._edge_id(u, j)])
                own_in = int(prev_in[self._edge_id(j, u)])
                reports: Dict[int, Optional[NeighborReport]] = {}
                missing = False
                last_direct = -1
                last_joiner = -1
                for mem in nbrs:
                    if mem == u:
                        continue
                    if good_direct and not self._bad_mask[mem]:
                        reports[mem] = NeighborReport(
                            member=mem,
                            outgoing=int(prev_out[self._edge_id(mem, j)]),
                            incoming=int(prev_in[self._edge_id(j, mem)]),
                        )
                        if mem in observers:
                            last_direct = max(last_direct, mem)
                        else:
                            last_joiner = max(last_joiner, mem)
                    else:
                        reports[mem] = None
                        missing = True
                g, s = indicators_from_reports(
                    u, own_out, own_in, reports, police.q_threshold_qpm
                )
                convicted = g > police.cut_threshold or s > police.cut_threshold
                # An investigation completes at the arrival of its *last*
                # expected report, and a conviction's disconnect evicts
                # the endpoints' still-pending investigations of each
                # other. Reports are sent in ascending sender-id order
                # (the roll visits peers in id order), so the delivery
                # rank of that last report -- the sender's id -- orders
                # same-instant conclusions exactly like the message
                # engine's event sequence.
                if missing or not reports:
                    # Never completes: the collection-window timer fires,
                    # anchored at the investigation's opening time (the
                    # roll for directs, first report arrival for joiners);
                    # timers fire in opening order = observer-id order.
                    opened = now if u in observers else report_at
                    t_end = opened + police.collection_window_s
                    rank = u
                elif last_joiner < 0:
                    t_end = report_at
                    rank = last_direct
                else:
                    t_end = report_at + self._hop
                    rank = last_joiner
                by_time.setdefault(t_end, []).append((rank, u, j, g, s, convicted))
        for t_end in sorted(by_time):
            decisions = [
                d[1:] for d in sorted(by_time[t_end])
            ]
            self.sim.schedule_at(t_end, self._conclude, decisions)

    def _conclude(self, decisions: List[Tuple[int, int, float, float, bool]]) -> None:
        now = self.sim.now
        for u, j, g, s, convicted in decisions:
            e_uj = self._edge_id(u, j)
            if not self.edge_alive[e_uj]:
                # The edge died before this conclusion (possibly cut by an
                # earlier decision in this same batch): the message engine
                # evicts the investigation via its neighbor-gone listener,
                # so no judgment is recorded.
                continue
            if convicted:
                e_ju = self._edge_id(j, u)
                self.edge_alive[e_uj] = False
                self.edge_alive[e_ju] = False
                self._alive_deg[u] -= 1
                self._alive_deg[j] -= 1
                self.stats.edges_cut += 1
                disconnected = True
            else:
                disconnected = False
            self.judgments.record(
                Judgment(
                    time=now,
                    observer=PeerId(u),
                    suspect=PeerId(j),
                    g_value=g,
                    s_value=s,
                    disconnected=disconnected,
                )
            )

    # ------------------------------------------------------------------
    def run(self) -> None:
        self.start_workload()
        self.sim.run(until=self.config.duration_s)


def run_soa_experiment(config: "DESConfig") -> SoaRun:
    """Build and run one wave-batched experiment end to end."""
    engine = SoaFloodEngine(config)
    t0 = time.perf_counter()
    engine.run()
    wall_s = time.perf_counter() - t0
    return SoaRun(
        config=config,
        n=engine.n,
        stats=engine.stats,
        accounting=engine.accounting,
        collector=engine.collector,
        judgments=engine.judgments,
        bad_peers=engine.bad_peers,
        wall_s=wall_s,
        heap_events=engine.sim.events_fired,
        waves_processed=engine.waves_processed,
        evidence_bytes=engine.evidence_bytes(),
    )
