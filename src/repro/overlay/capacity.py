"""Processing-capacity primitives.

The paper's Section 2.3 measurement fixes the two capacity anchors used
throughout: a good peer can *process* about 10,000 queries/minute (drops
begin around 15,000/min incoming and reach 47% at 29,000/min), and a bad
peer can *send* about 20,000 queries/minute. Peers here meter work with a
token bucket refilled continuously at the capacity rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass
class TokenBucket:
    """Continuous-refill token bucket.

    Parameters
    ----------
    rate_per_min:
        Refill rate, tokens (= queries) per minute of virtual time.
    burst:
        Bucket depth; defaults to one second's worth of tokens, modelling a
        short input queue in front of the query processor.
    """

    rate_per_min: float
    burst: float = 0.0
    _tokens: float = 0.0
    _last: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_per_min <= 0:
            raise ConfigError(f"rate must be positive, got {self.rate_per_min}")
        if self.burst <= 0:
            self.burst = self.rate_per_min / 60.0  # one second of work
        self._tokens = self.burst

    @property
    def rate_per_sec(self) -> float:
        return self.rate_per_min / 60.0

    def _refill(self, now: float) -> None:
        # Tolerate slightly out-of-order timestamps (interleaved sources
        # within one accounting window): no refill for time not yet seen.
        if now < self._last:
            return
        self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate_per_sec)
        self._last = now

    def try_consume(self, now: float, amount: float = 1.0) -> bool:
        """Consume ``amount`` tokens if available at virtual time ``now``."""
        if amount < 0:
            raise ConfigError(f"amount must be non-negative, got {amount}")
        self._refill(now)
        if self._tokens + 1e-12 >= amount:
            self._tokens -= amount
            return True
        return False

    def available(self, now: float) -> float:
        """Tokens available at virtual time ``now`` (refilled view)."""
        self._refill(now)
        return self._tokens
