"""Peer identifiers and Gnutella message GUIDs.

A :class:`PeerId` doubles as a synthetic IPv4 address (the Neighbor_Traffic
wire format of Table 1 carries 4-byte IP addresses); :class:`Guid` is the
16-byte message identifier used for flooding duplicate suppression.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True, order=True)
class PeerId:
    """Identity of a peer in the overlay.

    The integer ``value`` is mapped to a synthetic IPv4 address in
    ``10.0.0.0/8`` for wire encoding; it is *not* visible in Query/QueryHit
    messages (the anonymity property Section 2.1 relies on).
    """

    value: int

    def __post_init__(self) -> None:
        if not (0 <= self.value < 2**24):
            raise ValueError(f"PeerId out of range [0, 2^24): {self.value}")

    @property
    def ipv4(self) -> str:
        """Dotted-quad synthetic address, e.g. ``10.1.2.3``."""
        v = self.value
        return f"10.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def ipv4_bytes(self) -> bytes:
        """4-byte big-endian address for the Table 1 wire format."""
        return bytes([10, (self.value >> 16) & 0xFF, (self.value >> 8) & 0xFF, self.value & 0xFF])

    @classmethod
    def from_ipv4_bytes(cls, raw: bytes) -> "PeerId":
        if len(raw) != 4:
            raise ValueError(f"expected 4 address bytes, got {len(raw)}")
        if raw[0] != 10:
            raise ValueError(f"synthetic addresses live in 10.0.0.0/8, got first octet {raw[0]}")
        return cls((raw[1] << 16) | (raw[2] << 8) | raw[3])

    def __repr__(self) -> str:
        return f"PeerId({self.value})"

    def __int__(self) -> int:
        return self.value


@dataclass(frozen=True)
class Guid:
    """16-byte Gnutella message GUID."""

    raw: bytes

    def __post_init__(self) -> None:
        if len(self.raw) != 16:
            raise ValueError(f"GUID must be 16 bytes, got {len(self.raw)}")

    def hex(self) -> str:
        return self.raw.hex()

    def __repr__(self) -> str:
        return f"Guid({self.raw.hex()[:8]}...)"


class GuidFactory:
    """Deterministic GUID generator.

    Real servents use random GUIDs; we derive them from a seeded stream so
    simulations replay exactly. Uniqueness is guaranteed by a 64-bit counter
    folded into the random bytes.
    """

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng or random.Random(0)
        self._counter = 0

    def new(self) -> Guid:
        self._counter += 1
        head = self._rng.getrandbits(64).to_bytes(8, "big")
        tail = self._counter.to_bytes(8, "big")
        return Guid(head + tail)
