"""Vectorized per-minute query-flow propagation.

State for one minute: a directed edge set, per-node good-query issue
rates, per-edge attack injections, per-node processing capacities, and
per-node access-link bandwidths. Flows are propagated hop by hop up to
the TTL:

* age-0 flow is the injection (a flooded query is copied onto every
  outgoing edge of its source; per-neighbor attack queries are injected
  on their single target edge);
* a transmission on edge v->w is shaped by the sender's upstream link
  (``omega[v] = min(1, up_v / out-demand_v)``) and dropped at the
  receiver's downstream link (``iota[w] = min(1, down_w / in-load_w)``);
* arrivals at v of age h are ``A_h[v] = sum of delivered f_h over
  in-edges``; every arrival costs processing work (duplicates included --
  the GUID check happens after the message has been received), so the
  processed fraction is ``rho[v] = min(1, C_v / I_v)`` with ``I_v`` the
  total arrival rate across all ages;
* of the processed arrivals, the novel fraction ``sigma_h`` survives
  duplicate suppression and is forwarded on every out-edge except the
  reverse of its arrival edge:
  ``f_{h+1}[v->w] = (A_h[v] - d_h[w->v]) * sigma_h * rho[v]``.

``rho``/``omega``/``iota`` couple hops (drops upstream reduce load
downstream), so the propagation runs inside a damped fixed-point loop --
a handful of iterations converge to <0.1% residual on the graphs used
here.

Good and attack flows propagate as two classes sharing the loss factors;
only good flow contributes to success metrics, but both load capacity
and both appear in the per-edge counts DD-POLICE monitors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import ConfigError


def build_edge_arrays(
    adjacency: Dict[int, Set[int]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Directed edge arrays (src, dst, rev) from an adjacency dict.

    Every undirected link {u, v} yields the two directed edges u->v and
    v->u; ``rev[e]`` is the index of e's reverse. Nodes absent from
    ``adjacency`` simply have no edges.

    Edges are ordered by (src, dst), so ``src`` is non-decreasing and the
    per-source edges form contiguous slices (the CSR property
    :func:`edge_slice_index` exploits). The construction is vectorized --
    neighbor sets are flattened once at C speed, then a single argsort
    over packed (src, dst) keys yields the canonical order and the
    reverse-edge permutation -- but produces arrays identical to the
    reference python-loop implementation
    (:func:`build_edge_arrays_reference`).
    """
    src_parts: List[int] = []
    dst_parts: List[int] = []
    for u, vs in adjacency.items():
        if vs:
            src_parts.extend([u] * len(vs))
            dst_parts.extend(vs)
    src = np.asarray(src_parts, dtype=np.int64)
    dst = np.asarray(dst_parts, dtype=np.int64)
    if src.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty.copy(), empty.copy(), empty.copy()
    if src.min() < 0 or dst.min() < 0:
        raise ConfigError("node ids must be non-negative")
    span = int(max(src.max(), dst.max())) + 1
    keys = src * span + dst
    order = np.argsort(keys, kind="stable")
    src, dst, keys = src[order], dst[order], keys[order]
    if np.any(src == dst):
        u = int(src[int(np.argmax(src == dst))])
        raise ConfigError(f"self-loop at node {u}")
    swapped = dst * span + src
    rev = np.searchsorted(keys, swapped)
    rev = np.minimum(rev, len(keys) - 1)
    bad = keys[rev] != swapped
    if np.any(bad):
        e = int(np.argmax(bad))
        raise ConfigError(f"asymmetric adjacency at edge ({int(src[e])}, {int(dst[e])})")
    return src, dst, rev


def build_edge_arrays_reference(
    adjacency: Dict[int, Set[int]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pre-vectorization :func:`build_edge_arrays`; kept as the
    equivalence oracle for tests and before/after benchmarks."""
    src_list: List[int] = []
    dst_list: List[int] = []
    index: Dict[Tuple[int, int], int] = {}
    for u in sorted(adjacency):
        for v in sorted(adjacency[u]):
            if u == v:
                raise ConfigError(f"self-loop at node {u}")
            if v not in adjacency or u not in adjacency[v]:
                raise ConfigError(f"asymmetric adjacency at edge ({u}, {v})")
            index[(u, v)] = len(src_list)
            src_list.append(u)
            dst_list.append(v)
    src = np.asarray(src_list, dtype=np.int64)
    dst = np.asarray(dst_list, dtype=np.int64)
    rev = np.empty(len(src_list), dtype=np.int64)
    for (u, v), e in index.items():
        rev[e] = index[(v, u)]
    return src, dst, rev


def edge_slice_index(src: np.ndarray, n: int) -> np.ndarray:
    """CSR-style index over (src,dst)-sorted edges: ``indptr`` of length
    ``n + 1`` such that node ``u``'s outgoing edges occupy
    ``slice(indptr[u], indptr[u + 1])``.

    Replaces per-node ``src == u`` mask scans (O(E) each) with O(1)
    slices; out-degrees are ``np.diff(indptr)``.
    """
    if src.size and np.any(src[1:] < src[:-1]):
        raise ConfigError("src must be non-decreasing (build_edge_arrays order)")
    return np.searchsorted(src, np.arange(n + 1, dtype=np.int64))


@dataclass
class FlowResult:
    """Outcome of one minute's flow propagation."""

    #: Per-directed-edge delivered query rate (queries/min), by class --
    #: what the receiving side's In_query counter sees.
    edge_good: np.ndarray
    edge_attack: np.ndarray
    #: Per-directed-edge *sent* rate -- what the sending side's Out_query
    #: counter sees: shaped by the sender's own upstream link (messages
    #: that left its NIC) but not by the receiver's inbound loss. Under
    #: congestion sent > delivered; Neighbor_Traffic reports carry sent
    #: counts while the suspect could only forward what it received,
    #: which is how saturated systems bias g(j,t) downward and let
    #: attackers slip past large cut thresholds.
    edge_sent_total: np.ndarray
    #: Per-node processed fraction in [0, 1] (processing capacity).
    rho: np.ndarray
    #: Per-node upstream shaping / downstream drop fractions in [0, 1].
    omega: np.ndarray
    iota: np.ndarray
    #: Per-node total arrival rate (offered processing load, queries/min).
    offered: np.ndarray
    #: Per-hop system-wide novel processed *good* arrivals (queries/min),
    #: index h-1 for hop h; drives reach/success estimates.
    good_processed_per_hop: np.ndarray
    #: Per-hop processed-flow-weighted path quality: the expected
    #: ``rho * omega * iota`` at the nodes that handled good queries at
    #: hop h. A QueryHit returning through hop-h nodes survives each with
    #: ~this probability, so responses die in exactly the congestion that
    #: kills forward progress (Section 3.6's failed-response mechanism).
    good_path_quality_per_hop: np.ndarray
    #: Total injected rates (queries/min).
    good_injected: float
    attack_injected: float
    iterations: int

    @property
    def edge_total(self) -> np.ndarray:
        """Per-edge total (good + attack) -- the Q counts of Section 2.2."""
        return self.edge_good + self.edge_attack

    @property
    def total_messages_per_min(self) -> float:
        """Delivered query transmissions per minute across all links."""
        return float(self.edge_total.sum())

    @property
    def dropped_fraction(self) -> float:
        """Fraction of offered arrivals dropped for processing capacity."""
        total = float(self.offered.sum())
        if total <= 0:
            return 0.0
        processed = float((self.offered * self.rho).sum())
        return 1.0 - processed / total


def propagate_flows(
    src: np.ndarray,
    dst: np.ndarray,
    rev: np.ndarray,
    n: int,
    *,
    good_rate: np.ndarray,
    attack_edge_inject: np.ndarray,
    capacity: np.ndarray,
    ttl: int,
    sigma: np.ndarray,
    upstream_qpm: Optional[np.ndarray] = None,
    downstream_qpm: Optional[np.ndarray] = None,
    max_iterations: int = 10,
    damping: float = 0.5,
    tolerance: float = 1e-3,
) -> FlowResult:
    """Run the capacity/bandwidth fixed point and return converged flows.

    Parameters
    ----------
    src, dst, rev:
        Directed edge arrays from :func:`build_edge_arrays`.
    n:
        Node-id space size (arrays are indexed 0..n-1).
    good_rate:
        Per-node good-query issue rate (queries/min); flooded to all
        neighbors.
    attack_edge_inject:
        Per-*edge* attack injection (queries/min): distinct queries
        entering directly on specific edges (the per-neighbor pattern).
    capacity:
        Per-node processing capacity (queries/min).
    ttl:
        Maximum path length in hops.
    sigma:
        Novelty schedule ``sigma[0..ttl]`` from
        :func:`repro.fluid.coverage.novelty_schedule`.
    upstream_qpm / downstream_qpm:
        Per-node access-link rates in queries/min (Section 3.5's Saroiu
        assignment). ``None`` means unconstrained.
    """
    E = len(src)
    if len(dst) != E or len(rev) != E:
        raise ConfigError("edge arrays must have equal length")
    if good_rate.shape != (n,) or capacity.shape != (n,):
        raise ConfigError("good_rate/capacity must be shape (n,)")
    if attack_edge_inject.shape != (E,):
        raise ConfigError("attack_edge_inject must be shape (E,)")
    if len(sigma) < ttl + 1:
        raise ConfigError(f"sigma must cover hops 0..{ttl}")
    if np.any(good_rate < 0) or np.any(attack_edge_inject < 0):
        raise ConfigError("rates must be non-negative")
    if np.any(capacity <= 0):
        raise ConfigError("capacities must be positive")
    if not (0 < damping <= 1):
        raise ConfigError("damping must be in (0, 1]")
    if max_iterations < 1:
        raise ConfigError("max_iterations must be >= 1")
    up = np.full(n, np.inf) if upstream_qpm is None else np.asarray(upstream_qpm, float)
    down = (
        np.full(n, np.inf) if downstream_qpm is None else np.asarray(downstream_qpm, float)
    )
    if up.shape != (n,) or down.shape != (n,):
        raise ConfigError("bandwidth arrays must be shape (n,)")
    if np.any(up <= 0) or np.any(down <= 0):
        raise ConfigError("bandwidths must be positive")

    inj_good = good_rate[src] if E else np.zeros(0)
    rho = np.ones(n)
    omega = np.ones(n)
    iota = np.ones(n)
    result: Optional[FlowResult] = None

    for iteration in range(max_iterations):
        # Per-edge delivery factor under the current link loss estimates.
        link = omega[src] * iota[dst] if E else np.zeros(0)

        d_good = inj_good * link
        d_att = attack_edge_inject * link
        F_good = d_good.copy()
        F_att = d_att.copy()
        F_sent = (inj_good + attack_edge_inject) * (omega[src] if E else 1.0)
        out_demand = np.bincount(src, weights=inj_good + attack_edge_inject, minlength=n)
        in_load = np.bincount(dst, weights=(inj_good + attack_edge_inject) * omega[src], minlength=n)
        offered = np.zeros(n)
        good_hops = np.zeros(ttl)
        good_quality = np.ones(ttl)
        quality = rho * omega * iota

        for hop in range(1, ttl + 1):
            A_good = np.bincount(dst, weights=d_good, minlength=n)
            A_att = np.bincount(dst, weights=d_att, minlength=n)
            s = float(sigma[hop])
            # Every delivered message consumes processing (the Section 2.3
            # measurement charges per *received* query -- duplicates are
            # detected only after the node has spent work on them).
            offered += A_good + A_att
            processed_h = A_good * s * rho
            total_h = float(processed_h.sum())
            good_hops[hop - 1] = total_h
            if total_h > 0:
                good_quality[hop - 1] = float((processed_h * quality).sum()) / total_h
            if hop == ttl:
                break
            # Forwarded demand leaving each node (pre-link):
            f_good = (A_good[src] - d_good[rev]) * s * rho[src]
            f_att = (A_att[src] - d_att[rev]) * s * rho[src]
            np.clip(f_good, 0.0, None, out=f_good)
            np.clip(f_att, 0.0, None, out=f_att)
            f_tot = f_good + f_att
            F_sent = F_sent + f_tot * omega[src]
            out_demand += np.bincount(src, weights=f_tot, minlength=n)
            in_load += np.bincount(dst, weights=f_tot * omega[src], minlength=n)
            d_good = f_good * link
            d_att = f_att * link
            F_good += d_good
            F_att += d_att

        with np.errstate(divide="ignore", invalid="ignore"):
            rho_new = np.where(offered > 0, np.minimum(1.0, capacity / offered), 1.0)
            omega_new = np.where(out_demand > 0, np.minimum(1.0, up / out_demand), 1.0)
            iota_new = np.where(in_load > 0, np.minimum(1.0, down / in_load), 1.0)
        delta = max(
            float(np.abs(rho_new - rho).max()) if n else 0.0,
            float(np.abs(omega_new - omega).max()) if n else 0.0,
            float(np.abs(iota_new - iota).max()) if n else 0.0,
        )
        rho = damping * rho_new + (1.0 - damping) * rho
        omega = damping * omega_new + (1.0 - damping) * omega
        iota = damping * iota_new + (1.0 - damping) * iota
        result = FlowResult(
            edge_good=F_good,
            edge_attack=F_att,
            edge_sent_total=F_sent,
            rho=rho,
            omega=omega,
            iota=iota,
            offered=offered,
            good_processed_per_hop=good_hops,
            good_path_quality_per_hop=good_quality,
            good_injected=float(good_rate.sum()),
            attack_injected=float(attack_edge_inject.sum()),
            iterations=iteration + 1,
        )
        if delta < tolerance:
            break
    assert result is not None
    return result
