"""Mutable overlay state for the fluid engine.

Tracks, at one-minute granularity:

* which nodes are online (churn on/off cycling, Section 3.5);
* the live adjacency (join rewiring, police disconnects, reconnection of
  isolated peers -- attackers can always walk back in);
* the *stale* neighbor-list snapshots that buddy groups are built from
  (each node re-publishes its list every exchange period, so an observer
  works with a view up to that period old -- the paper's accuracy/overhead
  tradeoff of Section 3.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.fluid.flows import build_edge_arrays, edge_slice_index


@dataclass(frozen=True)
class FluidChurnConfig:
    """Minute-granularity churn parameters.

    ``leave_prob_per_min`` defaults to 1/10 (mean lifetime 10 minutes);
    ``join_prob_per_min`` to 1/10 (off-times on the same scale, per
    Bhagwan et al.'s ~6.4 cycles/day with long off periods scaled to the
    paper's session means).
    """

    enabled: bool = True
    leave_prob_per_min: float = 0.1
    join_prob_per_min: float = 0.1
    join_degree_min: int = 3
    join_degree_max: int = 4
    max_degree: int = 32
    #: Minutes an isolated (alive but fully disconnected) node waits
    #: before reconnecting -- the attacker walk-back-in delay.
    reconnect_delay_min: int = 1

    def __post_init__(self) -> None:
        if not (0 <= self.leave_prob_per_min <= 1):
            raise ConfigError("leave_prob_per_min must be in [0,1]")
        if not (0 <= self.join_prob_per_min <= 1):
            raise ConfigError("join_prob_per_min must be in [0,1]")
        if self.join_degree_min < 1 or self.join_degree_max < self.join_degree_min:
            raise ConfigError("bad join degree bounds")
        if self.max_degree < self.join_degree_max:
            raise ConfigError("max_degree must be >= join_degree_max")
        if self.reconnect_delay_min < 0:
            raise ConfigError("reconnect_delay_min must be >= 0")


class GraphState:
    """Online/offline membership + adjacency + stale list snapshots."""

    def __init__(
        self,
        n: int,
        adjacency: Dict[int, Set[int]],
        *,
        churn: FluidChurnConfig = FluidChurnConfig(),
        exchange_period_min: int = 2,
        rng: Optional[random.Random] = None,
    ) -> None:
        if n < 2:
            raise ConfigError("need at least two nodes")
        if exchange_period_min < 1:
            raise ConfigError("exchange_period_min must be >= 1")
        self.n = n
        self.churn = churn
        self.exchange_period_min = exchange_period_min
        self._rng = rng or random.Random(0)
        self.online: np.ndarray = np.ones(n, dtype=bool)
        self.adjacency: Dict[int, Set[int]] = {u: set(vs) for u, vs in adjacency.items()}
        for u in range(n):
            self.adjacency.setdefault(u, set())
        self._check_symmetry()
        #: Published neighbor lists (what buddy groups are built from).
        self.snapshots: Dict[int, FrozenSet[int]] = {
            u: frozenset(self.adjacency[u]) for u in range(n)
        }
        self._isolated_since: Dict[int, int] = {}
        #: Nodes that never leave *voluntarily* (the paper's agents "keep
        #: sending out attack queries"); they can still be expelled by the
        #: defense and then rejoin like anyone else.
        self.pinned: Set[int] = set()
        self.minute = 0
        self.joins = 0
        self.leaves = 0
        #: Monotone counter bumped on every edge mutation; consumers cache
        #: derived structures (edge arrays) keyed on it.
        self.topology_version = 0
        self._edge_cache_version = -1
        self._edge_cache: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = None

    # ------------------------------------------------------------------
    def _check_symmetry(self) -> None:
        for u, vs in self.adjacency.items():
            for v in vs:
                if u not in self.adjacency.get(v, set()):
                    raise ConfigError(f"asymmetric adjacency: ({u},{v})")

    def degree(self, u: int) -> int:
        return len(self.adjacency[u])

    def online_nodes(self) -> List[int]:
        return [u for u in range(self.n) if self.online[u]]

    def online_count(self) -> int:
        return int(self.online.sum())

    def live_adjacency(self) -> Dict[int, Set[int]]:
        """Adjacency restricted to online nodes (edges touch online only,
        by construction)."""
        return {u: set(vs) for u, vs in self.adjacency.items() if self.online[u]}

    def degrees_online(self) -> List[int]:
        return [len(self.adjacency[u]) for u in range(self.n) if self.online[u]]

    # ------------------------------------------------------------------
    # edge surgery
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> None:
        if u == v:
            raise ConfigError("self-loop")
        if not (self.online[u] and self.online[v]):
            raise ConfigError("both endpoints must be online")
        self.adjacency[u].add(v)
        self.adjacency[v].add(u)
        self.topology_version += 1

    def remove_edge(self, u: int, v: int) -> None:
        self.adjacency[u].discard(v)
        self.adjacency[v].discard(u)
        self.topology_version += 1

    def disconnect_all(self, u: int) -> None:
        for v in list(self.adjacency[u]):
            self.remove_edge(u, v)

    # ------------------------------------------------------------------
    # cached directed-edge view
    # ------------------------------------------------------------------
    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Directed edge arrays ``(src, dst, rev, indptr)`` over the live
        graph, cached on :attr:`topology_version`.

        Offline nodes hold no edges (leaving disconnects them), so
        building from the full adjacency equals building from
        :meth:`live_adjacency` -- without the per-minute dict/set copy.
        ``indptr`` is the per-source CSR slice index
        (:func:`repro.fluid.flows.edge_slice_index`). Callers must not
        mutate the returned arrays.
        """
        if self._edge_cache is None or self._edge_cache_version != self.topology_version:
            src, dst, rev = build_edge_arrays(self.adjacency)
            indptr = edge_slice_index(src, self.n)
            self._edge_cache = (src, dst, rev, indptr)
            self._edge_cache_version = self.topology_version
        return self._edge_cache

    # ------------------------------------------------------------------
    # churn step (call once per minute, before flows)
    # ------------------------------------------------------------------
    def step_churn(self) -> Tuple[int, int]:
        """Process one minute of leaves/joins; returns (left, joined)."""
        self.minute += 1
        if not self.churn.enabled:
            self._reconnect_isolated()
            return (0, 0)
        left = joined = 0
        for u in range(self.n):
            # Draw for every node unconditionally so pinning a subset (the
            # attack agents) does not shift the stream for everyone else:
            # baseline/attacked twins then share identical churn.
            draw = self._rng.random()
            if self.online[u]:
                if u not in self.pinned and draw < self.churn.leave_prob_per_min:
                    self._leave(u)
                    left += 1
            else:
                if draw < self.churn.join_prob_per_min:
                    self._join(u)
                    joined += 1
        self._reconnect_isolated()
        self.leaves += left
        self.joins += joined
        return (left, joined)

    def _leave(self, u: int) -> None:
        self.disconnect_all(u)
        self.online[u] = False
        self._isolated_since.pop(u, None)

    def _join(self, u: int) -> None:
        self.online[u] = True
        self._connect_fresh(u)

    def _connect_fresh(self, u: int) -> None:
        want = self._rng.randint(self.churn.join_degree_min, self.churn.join_degree_max)
        # Rejection-sample bootstrap candidates instead of materializing
        # the O(n) eligible pool on every join (it dominated setup time
        # at the paper's 20,000-peer scale).
        got = 0
        attempts = 0
        max_attempts = 40 * want
        while got < want and attempts < max_attempts:
            attempts += 1
            v = self._rng.randrange(self.n)
            if (
                v == u
                or not self.online[v]
                or v in self.adjacency[u]
                or len(self.adjacency[v]) >= self.churn.max_degree
            ):
                continue
            self.add_edge(u, v)
            got += 1

    def _reconnect_isolated(self) -> None:
        """Alive-but-disconnected peers walk back in after the delay.

        This is how a police-disconnected attacker "join[s] the system
        again and launch[es] another round of attacks".
        """
        for u in range(self.n):
            if self.online[u] and not self.adjacency[u]:
                since = self._isolated_since.get(u)
                if since is None:
                    self._isolated_since[u] = self.minute
                elif self.minute - since >= self.churn.reconnect_delay_min:
                    self._connect_fresh(u)
                    del self._isolated_since[u]
            else:
                self._isolated_since.pop(u, None)

    # ------------------------------------------------------------------
    # neighbor-list snapshots
    # ------------------------------------------------------------------
    def step_exchange(self) -> int:
        """Refresh list snapshots for nodes whose phase matches this
        minute; returns the number of lists re-published."""
        refreshed = 0
        for u in range(self.n):
            if not self.online[u]:
                continue
            if (self.minute + u) % self.exchange_period_min == 0:
                self.snapshots[u] = frozenset(self.adjacency[u])
                refreshed += 1
        return refreshed

    def known_neighbors(self, u: int) -> FrozenSet[int]:
        """The (possibly stale) published neighbor list of ``u``."""
        return self.snapshots.get(u, frozenset())

    def snapshot_staleness(self) -> float:
        """Mean fraction of each online node's published list that no
        longer matches its live neighbors (diagnostic)."""
        errs = []
        for u in self.online_nodes():
            snap, live = self.snapshots.get(u, frozenset()), self.adjacency[u]
            union = snap | live
            if union:
                errs.append(len(snap ^ live) / len(union))
        return float(np.mean(errs)) if errs else 0.0
