"""Fluid-flow large-scale engine.

Per-message DES at the paper's scale (20,000 peers x 10^6 queries) is
~10^10 events -- intractable in pure Python. DD-POLICE, however, consumes
only *per-minute per-directed-edge query counts* (Out_query/In_query), so
the large-scale experiments run on a fluid model that computes exactly
those quantities: each minute, query *rates* are propagated hop-by-hop
over the edge set (vectorized numpy), with

* GUID-duplicate suppression approximated by a per-hop novelty factor
  derived from the graph's branching structure (:mod:`coverage`),
* capacity-driven drops via a damped fixed point on per-node processed
  fractions (:mod:`flows`),
* churn, attack injection, DD-POLICE detection, and service-quality
  metrics layered on top (:mod:`graphstate`, :mod:`police`,
  :mod:`model`).

The message-level engine cross-validates the fluid model at small N
(``benchmarks/bench_ablation_fluid_vs_des.py``).
"""

from repro.fluid.coverage import novelty_schedule, expected_coverage
from repro.fluid.flows import FlowResult, propagate_flows, build_edge_arrays
from repro.fluid.graphstate import GraphState, FluidChurnConfig
from repro.fluid.police import FluidPolice, FluidPoliceStats
from repro.fluid.model import FluidConfig, FluidSimulation, MinuteRow

__all__ = [
    "novelty_schedule",
    "expected_coverage",
    "FlowResult",
    "propagate_flows",
    "build_edge_arrays",
    "GraphState",
    "FluidChurnConfig",
    "FluidPolice",
    "FluidPoliceStats",
    "FluidConfig",
    "FluidSimulation",
    "MinuteRow",
]
