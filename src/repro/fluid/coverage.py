"""Flood-coverage and duplicate-novelty approximation.

A flooded query's copies collide: once a peer has seen a GUID, further
copies are dropped. In the fluid model we need, per hop h, the expected
probability ``sigma_h`` that a copy arriving h hops from the source is
*novel*. We use the standard branching-process approximation on a random
graph with the observed degree sequence:

* ``new_1 = mean degree`` nodes are reached at hop 1 (all novel);
* each newly reached node exposes ``d_ex = E[d(d-1)] / E[d]`` further
  edges on average (mean excess degree);
* saturation: a candidate at hop h is novel with probability
  ``1 - M_{h-1} / n`` where ``M_{h-1}`` is the expected coverage so far.

Recurrence (h >= 2)::

    sigma_h = 1 - M_{h-1} / n
    new_h   = new_{h-1} * d_ex * sigma_h
    M_h     = min(n, M_{h-1} + new_h)

with ``M_0 = 1``, ``sigma_1 = 1``, ``M_1 = min(n, 1 + new_1)``.

The schedule attenuates forwarded flow in :mod:`repro.fluid.flows`; the
coverage curve drives success-rate and response-time estimates in
:mod:`repro.fluid.model`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError


def degree_moments(degrees: Sequence[int]) -> Tuple[float, float]:
    """(mean degree, mean excess degree) from a degree sequence."""
    d = np.asarray(degrees, dtype=float)
    if d.size == 0:
        raise ConfigError("empty degree sequence")
    mean = float(d.mean())
    if mean <= 0:
        return 0.0, 0.0
    excess = float((d * (d - 1.0)).sum() / d.sum())
    return mean, excess


def _schedule(
    degrees: Sequence[int], ttl: int, n: int
) -> Tuple[np.ndarray, List[float]]:
    """Shared recurrence: returns (sigma[0..ttl], M[0..ttl])."""
    if ttl < 1:
        raise ConfigError(f"ttl must be >= 1, got {ttl}")
    n_nodes = n if n > 0 else len(degrees)
    if n_nodes < 1:
        raise ConfigError("need at least one node")
    if len(degrees) == 0:
        mean_deg, excess = 0.0, 0.0
    else:
        mean_deg, excess = degree_moments(degrees)
    sigma = np.ones(ttl + 1)
    if mean_deg <= 0:
        sigma[1:] = 0.0
        return sigma, [1.0] * (ttl + 1)
    M: List[float] = [1.0]
    new = mean_deg
    sigma[1] = 1.0
    M.append(min(float(n_nodes), 1.0 + new))
    for h in range(2, ttl + 1):
        attempts = new * excess
        if attempts <= 0:
            sigma[h] = 0.0
            new = 0.0
            M.append(M[-1])
            continue
        frac_unseen = max(0.0, 1.0 - M[-1] / n_nodes)
        # Collision-aware novelty: `attempts` copies land on ~uniform
        # targets, of which only the unseen fraction can be novel, and
        # same-hop copies collide with each other (birthday effect):
        # expected distinct new nodes = n * unseen * (1 - exp(-a/n)).
        distinct_new = n_nodes * frac_unseen * (1.0 - np.exp(-attempts / n_nodes))
        sigma[h] = min(1.0, distinct_new / attempts)
        new = attempts * sigma[h]
        M.append(min(float(n_nodes), M[-1] + new))
    return sigma, M


def novelty_schedule(degrees: Sequence[int], ttl: int, *, n: int = 0) -> np.ndarray:
    """Per-hop novelty probabilities ``sigma[1..ttl]`` (index 0 unused)."""
    sigma, _ = _schedule(degrees, ttl, n)
    return sigma


def expected_coverage(degrees: Sequence[int], ttl: int, *, n: int = 0) -> List[float]:
    """Expected cumulative nodes reached by each hop, ``M[0..ttl]``."""
    _, M = _schedule(degrees, ttl, n)
    return M
