"""The fluid simulation: churn + attack + flows + defense + metrics.

One :class:`FluidSimulation` advances minute by minute:

1. churn step (leaves/joins/reconnects) and neighbor-list republication;
2. attack injection for the active agents, rate-law
   ``Q_d = min(nominal, upstream link capacity)`` with a partial-minute
   factor on (re)join minutes;
3. flow propagation (:mod:`repro.fluid.flows`) yielding the per-edge
   per-minute counts;
4. service-quality metrics: traffic cost, success rate, response time --
   derived from flood reach against the content catalog's replica
   distribution;
5. the configured defense (DD-POLICE / naive cutoff / none) reacts to the
   counts, cutting edges and expelling fully-disconnected peers.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Set

import numpy as np

from repro.attack.cheating import CheatStrategy
from repro.core.config import DDPoliceConfig
from repro.errors import ConfigError, MetricsError
from repro.fluid.coverage import novelty_schedule
from repro.fluid.flows import (
    FlowResult,
    build_edge_arrays_reference,
    propagate_flows,
)
from repro.fluid.graphstate import FluidChurnConfig, GraphState
from repro.fluid.police import EdgeFlows, FluidNaiveCutoff, FluidPolice
from repro.metrics.errors import ErrorCounts, JudgmentLog
from repro.obs.config import Observability, ObsConfig
from repro.overlay.bandwidth import BandwidthModel
from repro.simkit.rng import RngRegistry, derive_seed
from repro.overlay.content import ContentCatalog, ContentConfig
from repro.overlay.topology import TopologyConfig, generate_topology


#: When True, :meth:`FluidSimulation.step` uses the pre-PR-3 per-minute
#: code path (python-loop edge building, per-agent ``src == u`` mask
#: scans, python metric loops). The two paths are numerically identical;
#: the flag exists so benchmarks and equivalence tests can measure the
#: unoptimized baseline. Toggle via :func:`legacy_hot_path`.
_LEGACY_HOT_PATH = False


@contextmanager
def legacy_hot_path() -> Iterator[None]:
    """Run fluid steps on the unoptimized (pre-cache, pre-CSR) path."""
    global _LEGACY_HOT_PATH
    saved = _LEGACY_HOT_PATH
    _LEGACY_HOT_PATH = True
    try:
        yield
    finally:
        _LEGACY_HOT_PATH = saved


@dataclass(frozen=True)
class FluidConfig:
    """Everything a large-scale run needs."""

    n: int = 2000
    topology: Optional[TopologyConfig] = None
    ttl: int = 7
    #: Normal-peer behaviour.
    issue_rate_qpm: float = 0.3
    capacity_qpm: float = 10_000.0
    #: Attack.
    num_agents: int = 0
    attack_start_min: int = 0
    attack_nominal_qpm: float = 20_000.0
    cap_attack_by_bandwidth: bool = True
    #: Agents stay online for the whole attack by default ("keep sending
    #: out attack queries at the maximum rate"); they still lose their
    #: position when the defense expels them, and rejoin via churn.
    agents_churn: bool = False
    cheat_strategy: CheatStrategy = CheatStrategy.SILENT
    #: Dynamics.
    churn: FluidChurnConfig = FluidChurnConfig()
    #: Minutes of churn-only warmup before metrics start, so the online
    #: population and topology begin at churn steady state instead of
    #: decaying through the measurement window.
    churn_warmup_min: int = 15
    exchange_period_min: int = 2
    #: Defense: "none" | "ddpolice" | "naive".
    defense: str = "none"
    police: DDPoliceConfig = DDPoliceConfig()
    naive_cutoff_qpm: float = 500.0
    #: Content / service model.
    content: ContentConfig = ContentConfig()
    hop_latency_s: float = 0.05
    max_queue_wait_s: float = 2.0
    seed: int = 0
    #: Observability (tracing / metrics / profiling). The default is
    #: fully disabled, which costs one branch per minute step and keeps
    #: rows bit-identical to pre-obs builds.
    obs: ObsConfig = ObsConfig()

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigError("n must be >= 2")
        if self.ttl < 1:
            raise ConfigError("ttl must be >= 1")
        if self.issue_rate_qpm < 0:
            raise ConfigError("issue_rate_qpm must be non-negative")
        if self.capacity_qpm <= 0:
            raise ConfigError("capacity_qpm must be positive")
        if not (0 <= self.num_agents <= self.n):
            raise ConfigError("num_agents out of range")
        if self.attack_start_min < 0:
            raise ConfigError("attack_start_min must be non-negative")
        if self.attack_nominal_qpm <= 0:
            raise ConfigError("attack_nominal_qpm must be positive")
        if self.churn_warmup_min < 0:
            raise ConfigError("churn_warmup_min must be non-negative")
        if self.exchange_period_min < 1:
            raise ConfigError("exchange_period_min must be >= 1")
        if self.defense not in ("none", "ddpolice", "naive"):
            raise ConfigError(f"unknown defense {self.defense!r}")
        if self.naive_cutoff_qpm <= 0:
            raise ConfigError("naive_cutoff_qpm must be positive")
        if self.hop_latency_s <= 0:
            raise ConfigError("hop_latency_s must be positive")
        if self.max_queue_wait_s < 0:
            raise ConfigError("max_queue_wait_s must be non-negative")
        if self.seed < 0:
            raise ConfigError("seed must be non-negative")

    def without_attack(self) -> "FluidConfig":
        """Baseline twin (same seed, no agents) for damage-rate series."""
        return replace(self, num_agents=0, defense="none")


@dataclass
class MinuteRow:
    """Metrics for one simulated minute."""

    minute: int
    online: int
    edges_directed: int
    agents_online: int
    agents_attacking: int
    good_injected_qpm: float
    attack_injected_qpm: float
    query_messages_qpm: float
    control_messages_qpm: float
    dropped_fraction: float
    mean_rho: float
    reach_per_query: float
    success_rate: float
    response_time_s: float
    edges_cut: int
    list_staleness: float

    @property
    def traffic_cost_kqpm(self) -> float:
        """Total messages per minute in thousands (Figure 9 units)."""
        return (self.query_messages_qpm + self.control_messages_qpm) / 1000.0


class FluidSimulation:
    """Minute-stepped large-scale simulation."""

    def __init__(self, config: FluidConfig) -> None:
        self.config = config
        # Named streams: baseline and attacked twins share identical
        # churn/bandwidth/topology draws (common random numbers), so
        # damage-rate series are exactly zero before the attack starts.
        self._rngs = RngRegistry(config.seed)
        self._rng = self._rngs.stream("model")
        topo_cfg = config.topology or TopologyConfig(n=config.n, seed=config.seed)
        if topo_cfg.n != config.n:
            raise ConfigError("topology n must match config n")
        topo = generate_topology(topo_cfg)
        self.state = GraphState(
            config.n,
            {u: set(vs) for u, vs in enumerate(topo.adjacency)},
            churn=config.churn,
            exchange_period_min=config.exchange_period_min,
            rng=self._rngs.stream("churn"),
        )
        # Ground truth: which peers are compromised.
        self.bad_peers: Set[int] = set(
            self._rngs.stream("agents").sample(range(config.n), config.num_agents)
        )
        # Per-node access bandwidth (Saroiu assignment, Section 3.5).
        bw = BandwidthModel(seed=derive_seed(config.seed, "bandwidth"))
        classes = bw.assign(config.n)
        self.upstream_qpm = np.asarray([bw.upstream_qpm(c) for c in classes])
        self.downstream_qpm = np.asarray([bw.downstream_qpm(c) for c in classes])
        # Attack rate per agent: Q_d = min(nominal, upstream capacity).
        self.attack_rate: Dict[int, float] = {}
        for u in sorted(self.bad_peers):
            cap = (
                float(self.upstream_qpm[u])
                if config.cap_attack_by_bandwidth
                else float("inf")
            )
            self.attack_rate[u] = min(config.attack_nominal_qpm, cap)

        self.capacity = np.full(config.n, config.capacity_qpm)
        self.catalog = ContentCatalog(config.content, config.n)
        self._pop = np.asarray(self.catalog.popularity)
        self._rep = np.asarray(
            [self.catalog.replica_count(o) for o in range(config.content.num_objects)],
            dtype=float,
        )

        self.judgments = JudgmentLog()
        self.police: Optional[FluidPolice] = None
        self.naive: Optional[FluidNaiveCutoff] = None
        if config.defense == "ddpolice":
            self.police = FluidPolice(
                config.police,
                self.bad_peers,
                cheat_strategy=config.cheat_strategy,
                judgment_log=self.judgments,
                rng=self._rngs.stream("police"),
            )
        elif config.defense == "naive":
            self.naive = FluidNaiveCutoff(
                config.naive_cutoff_qpm, self.bad_peers, judgment_log=self.judgments
            )

        if not config.agents_churn:
            self.state.pinned = set(self.bad_peers)

        # Churn-only warmup: converge the online population/topology to
        # steady state before minute 0.
        if config.churn.enabled and config.churn_warmup_min > 0:
            for _ in range(config.churn_warmup_min):
                self.state.step_churn()
                self.state.step_exchange()
            self.state.minute = 0
            self.state.joins = 0
            self.state.leaves = 0

        self.rows: List[MinuteRow] = []
        self._agent_fresh: Dict[int, bool] = {u: True for u in self.bad_peers}
        self._was_online: Dict[int, bool] = {u: True for u in self.bad_peers}
        self._control_messages_acc = 0.0

        #: None when config.obs is fully disabled (the default), so the
        #: per-minute guard in :meth:`step` is a single falsy branch.
        self.obs = Observability.from_config(
            config.obs, run=f"fluid-seed{config.seed}"
        )
        self._tracer = self.obs.tracer if self.obs is not None else None
        self._metrics = self.obs.metrics if self.obs is not None else None

    # ------------------------------------------------------------------
    @property
    def minute(self) -> int:
        return self.state.minute

    def attack_active(self) -> bool:
        return bool(self.bad_peers) and self.minute >= self.config.attack_start_min

    # ------------------------------------------------------------------
    def step(self) -> MinuteRow:
        """Advance one minute and return its metrics row."""
        if self._tracer is None and self._metrics is None:
            return self._step_minute()
        import time as _time

        started = _time.perf_counter()
        row = self._step_minute()
        wall = _time.perf_counter() - started
        if self._metrics is not None:
            self._metrics.timer("fluid.minute_wall_s").observe(wall)
            self._metrics.gauge("fluid.online").set(row.online)
            self._metrics.counter("fluid.minutes").inc()
        if self._tracer is not None:
            self._tracer.event(
                "fluid.minute",
                t=row.minute * 60.0,
                minute=row.minute,
                online=row.online,
                agents_attacking=row.agents_attacking,
                success_rate=row.success_rate,
                edges_cut=row.edges_cut,
                wall_s=wall,
            )
        return row

    def _step_minute(self) -> MinuteRow:
        cfg = self.config
        state = self.state
        state.step_churn()
        refreshed = state.step_exchange()

        legacy = _LEGACY_HOT_PATH
        if legacy:
            online = len(state.online_nodes())
            adjacency = state.live_adjacency()
            src, dst, rev = build_edge_arrays_reference(adjacency)
            indptr = None
        else:
            online = state.online_count()
            # Cached between minutes; GraphState invalidates on any
            # churn/edge-cut mutation via its topology version.
            src, dst, rev, indptr = state.edge_arrays()
        E = len(src)

        # -- injections -------------------------------------------------
        # A peer issues queries iff it is online with >= 1 live neighbor,
        # which (edges exist only between online peers) is exactly
        # out-degree > 0.
        if legacy:
            good_rate = np.zeros(cfg.n)
            for u in state.online_nodes():
                if state.adjacency[u]:
                    good_rate[u] = cfg.issue_rate_qpm
        else:
            deg_all = np.diff(indptr)
            good_rate = np.where(deg_all > 0, cfg.issue_rate_qpm, 0.0)

        attack_inject = np.zeros(E)
        attacking = 0
        agents_online = 0
        if self.attack_active():
            if legacy:
                deg_out = np.bincount(src, minlength=cfg.n) if E else np.zeros(cfg.n)
            for u in sorted(self.bad_peers):
                now_online = bool(state.online[u]) and bool(state.adjacency[u])
                if now_online:
                    agents_online += 1
                    factor = 1.0
                    if not self._was_online.get(u, False) or self._agent_fresh.get(u, False):
                        # partial first minute after (re)joining
                        factor = self._rng.uniform(0.3, 1.0)
                        self._agent_fresh[u] = False
                    rate = self.attack_rate[u] * factor
                    if legacy:
                        mask = src == u
                        k = deg_out[u]
                        if k > 0:
                            attack_inject[mask] = rate / k
                            attacking += 1
                    else:
                        # CSR slice: node u's out-edges are contiguous in
                        # the (src, dst)-sorted edge arrays.
                        lo, hi = int(indptr[u]), int(indptr[u + 1])
                        if hi > lo:
                            attack_inject[lo:hi] = rate / (hi - lo)
                            attacking += 1
                else:
                    self._agent_fresh[u] = True
                self._was_online[u] = now_online
        else:
            for u in self.bad_peers:
                now_online = bool(state.online[u]) and bool(state.adjacency[u])
                if now_online:
                    agents_online += 1
                self._was_online[u] = now_online

        # -- flows -------------------------------------------------------
        if legacy:
            degrees = state.degrees_online() or [0]
        else:
            degrees = deg_all[state.online]
            if degrees.size == 0:
                degrees = [0]
        sigma = novelty_schedule(degrees, cfg.ttl, n=max(1, online))
        flow = propagate_flows(
            src,
            dst,
            rev,
            cfg.n,
            good_rate=good_rate,
            attack_edge_inject=attack_inject,
            capacity=self.capacity,
            ttl=cfg.ttl,
            sigma=sigma,
            upstream_qpm=self.upstream_qpm,
            downstream_qpm=self.downstream_qpm,
        )

        # -- service metrics ----------------------------------------------
        reach = self._reach_per_query(flow)
        success = self._success_rate(reach)
        response = self._response_time(flow)

        # -- defense -------------------------------------------------------
        edges_cut = 0
        if legacy:
            online_nodes = state.online_nodes()
            mean_deg = (
                float(np.mean([len(state.adjacency[u]) for u in online_nodes]))
                if online_nodes
                else 0.0
            )
        else:
            # Every directed edge has an online source, so the online
            # degree sum is exactly E.
            mean_deg = float(E) / online if online else 0.0
        # Each republishing peer sends its list to every neighbor.
        control_msgs = float(refreshed) * mean_deg
        if self.police is not None or self.naive is not None:
            keys = list(zip(src.tolist(), dst.tolist()))
            delivered: EdgeFlows = dict(zip(keys, flow.edge_total.tolist()))
            sent: EdgeFlows = dict(zip(keys, flow.edge_sent_total.tolist()))
            if self.police is not None:
                before = self.police.stats.traffic_messages
                edges_cut = self.police.step(
                    float(self.minute), state, delivered, sent
                )
                control_msgs += self.police.stats.traffic_messages - before
            else:
                assert self.naive is not None
                edges_cut = self.naive.step(float(self.minute), state, delivered)

        row = MinuteRow(
            minute=self.minute,
            online=online,
            edges_directed=E,
            agents_online=agents_online,
            agents_attacking=attacking,
            good_injected_qpm=float(good_rate.sum()),
            attack_injected_qpm=float(attack_inject.sum()),
            query_messages_qpm=flow.total_messages_per_min,
            control_messages_qpm=float(control_msgs),
            dropped_fraction=flow.dropped_fraction,
            mean_rho=float(flow.rho[state.online].mean()) if online else 1.0,
            reach_per_query=reach,
            success_rate=success,
            response_time_s=response,
            edges_cut=edges_cut,
            list_staleness=state.snapshot_staleness(),
        )
        self.rows.append(row)
        return row

    def run(self, minutes: int) -> List[MinuteRow]:
        """Advance ``minutes`` minutes; returns all accumulated rows."""
        if minutes < 1:
            raise ConfigError("minutes must be >= 1")
        profiler = self.obs.profiler if self.obs is not None else None
        if profiler is not None:
            with profiler.scope("fluid.run", minutes=minutes, n=self.config.n):
                for _ in range(minutes):
                    self.step()
        else:
            for _ in range(minutes):
                self.step()
        return self.rows

    def close_obs(self) -> None:
        """Flush and close trace sinks (no-op when obs is disabled)."""
        if self.obs is not None:
            self.obs.close()

    # ------------------------------------------------------------------
    # derived service metrics
    # ------------------------------------------------------------------
    def _effective_per_hop(self, flow: FlowResult) -> "np.ndarray":
        """Per-hop *useful* reach of one good query.

        A hop-h peer contributes to success only if (a) it processes the
        query and (b) its QueryHit survives the h-hop return path; each
        return hop crosses a node that forwards with its processed
        fraction, so survival multiplies the path-weighted rho per hop.
        """
        if flow.good_injected <= 0:
            return np.zeros(self.config.ttl)
        per_hop = flow.good_processed_per_hop / flow.good_injected
        survival = np.cumprod(flow.good_path_quality_per_hop)
        return per_hop * survival

    def _reach_per_query(self, flow: FlowResult) -> float:
        """Expected distinct peers whose answer could come back.

        Capped at the online population (the novelty approximation can
        overshoot on small dense graphs).
        """
        reach = float(self._effective_per_hop(flow).sum())
        return min(reach, float(max(1, self.state.online_count())))

    def _success_rate(self, reach: float) -> float:
        """S(t): popularity-weighted P(>=1 replica within reach).

        With R replicas uniform over n peers and an expected processed
        reach of m peers, P(hit) ~= 1 - exp(-m R / n).
        """
        if reach <= 0:
            return 0.0
        p_hit = 1.0 - np.exp(-reach * self._rep / self.config.n)
        return float((self._pop * p_hit).sum())

    def _response_time(self, flow: FlowResult) -> float:
        """Mean response time of successful queries (seconds).

        First-hit hop distribution from cumulative per-hop reach;
        round-trip over that many hops with congestion-dependent per-hop
        delay (M/D/1 wait at the flow-weighted mean utilization).
        """
        cfg = self.config
        if flow.good_injected <= 0:
            return 0.0
        cum = np.cumsum(self._effective_per_hop(flow))
        # Popularity-weighted P(hit within h hops).
        p_by_hop = 1.0 - np.exp(
            -np.outer(cum, self._rep) / cfg.n
        )  # (ttl, K)
        p_h = (p_by_hop * self._pop).sum(axis=1)  # success prob by hop
        total = p_h[-1]
        if total <= 1e-12:
            return 0.0
        pmf = np.diff(np.concatenate([[0.0], p_h])) / total
        hops = np.arange(1, cfg.ttl + 1)
        expected_hops = float((pmf * hops).sum())
        # Congestion delay: demand-weighted utilization across nodes (a
        # response crosses the nodes where the load actually is).
        util = np.minimum(1.0, flow.offered / self.capacity)
        weights = flow.offered
        wsum = float(weights.sum())
        mean_util = float((util * weights).sum() / wsum) if wsum > 0 else 0.0
        mean_util = min(mean_util, 0.98)
        service_s = 60.0 / cfg.capacity_qpm
        wait = service_s * mean_util / (2.0 * (1.0 - mean_util))
        wait = min(wait, cfg.max_queue_wait_s)
        hop_delay = cfg.hop_latency_s + wait
        return 2.0 * expected_hops * hop_delay

    # ------------------------------------------------------------------
    # run-level summaries
    # ------------------------------------------------------------------
    def error_counts(self) -> ErrorCounts:
        """Figure 13 error measures against ground truth."""
        return self.judgments.error_counts(set(self.bad_peers))

    def mean_over(self, first_minute: int, attr: str) -> float:
        """Mean of a row attribute from ``first_minute`` (1-based) on.

        Raises :class:`~repro.errors.MetricsError` when the selection
        window is empty (e.g. ``first_minute`` past the end of the run,
        or the simulation has not been stepped yet).
        """
        vals = [getattr(r, attr) for r in self.rows if r.minute >= first_minute]
        if not vals:
            last = self.rows[-1].minute if self.rows else None
            raise MetricsError(
                f"empty selection window: no rows at minute >= {first_minute} "
                f"(last simulated minute: {last})"
            )
        return float(np.mean(vals))
