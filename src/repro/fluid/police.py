"""DD-POLICE detection over fluid per-edge counts.

Runs the same decision logic as the message-level engine -- warning
threshold, buddy-group reports, Definitions 2.1/2.2, cut threshold --
against the per-minute per-edge query counts the fluid engine produces.

Faithfulness notes:

* buddy groups come from the suspect's *published* neighbor list
  (:meth:`GraphState.known_neighbors`), which is up to one exchange
  period stale -- new neighbors are invisible (their traffic inflates g),
  departed members report zero (their ghost membership deflates g);
* compromised peers answer with their configured
  :class:`~repro.attack.cheating.CheatStrategy`; silence is mapped to
  (0, 0) per Section 3.4;
* a suspect convicted by an observer loses that one edge; a peer cut by
  *all* its neighbors drops out and must rejoin through bootstrap (the
  model marks it offline so the churn process re-admits it later).

The naive-cutoff baseline is included here as well so the large-scale
comparison benches can swap defenses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.attack.cheating import CheatStrategy, apply_cheat
from repro.core.config import DDPoliceConfig
from repro.core.indicators import NeighborReport, indicators_from_reports
from repro.errors import ConfigError
from repro.fluid.graphstate import GraphState
from repro.metrics.errors import Judgment, JudgmentLog

EdgeFlows = Dict[Tuple[int, int], float]


@dataclass
class FluidPoliceStats:
    """Per-run protocol accounting."""

    investigations: int = 0
    convictions: int = 0
    edges_cut: int = 0
    peers_expelled: int = 0
    traffic_messages: int = 0  # Neighbor_Traffic messages exchanged


class FluidPolice:
    """Minute-step DD-POLICE evaluator."""

    def __init__(
        self,
        config: DDPoliceConfig,
        bad_peers: Set[int],
        *,
        cheat_strategy: CheatStrategy = CheatStrategy.SILENT,
        judgment_log: Optional[JudgmentLog] = None,
        rng: Optional[random.Random] = None,
        record_clears: bool = False,
    ) -> None:
        self.config = config
        self.bad_peers = set(bad_peers)
        self.cheat_strategy = cheat_strategy
        self.judgments = judgment_log if judgment_log is not None else JudgmentLog()
        self.stats = FluidPoliceStats()
        self._rng = rng or random.Random(0)
        self.record_clears = record_clears

    # ------------------------------------------------------------------
    def _member_report(
        self,
        member: int,
        suspect: int,
        state: GraphState,
        delivered: EdgeFlows,
        sent: EdgeFlows,
    ) -> Optional[NeighborReport]:
        """What buddy-group member ``member`` reports about ``suspect``.

        ``# of Outgoing queries`` counts what the member *sent* (its own
        Out_query counter, pre-link-loss); ``# of Incoming`` counts what
        it actually *received* from the suspect.
        """
        if not state.online[member]:
            return None  # offline: no answer within the window
        if suspect in state.adjacency[member]:
            true_out = int(round(sent.get((member, suspect), 0.0)))
            true_in = int(round(delivered.get((suspect, member), 0.0)))
        else:
            true_out = true_in = 0  # stale membership: honest zeros
        if member in self.bad_peers:
            cheated = apply_cheat(self.cheat_strategy, true_out, true_in)
            if cheated is None:
                return None
            return NeighborReport(member=member, outgoing=cheated[0], incoming=cheated[1])
        return NeighborReport(member=member, outgoing=true_out, incoming=true_in)

    # ------------------------------------------------------------------
    def step(
        self,
        minute: float,
        state: GraphState,
        flows: EdgeFlows,
        sent: Optional[EdgeFlows] = None,
    ) -> int:
        """Run one detection round; returns edges cut this minute.

        ``flows`` carries delivered counts (the receiver-side In_query
        view); ``sent`` the sender-side Out_query view (defaults to
        ``flows`` when link loss is not modelled).
        """
        if sent is None:
            sent = flows
        warning = self.config.warning_threshold_qpm
        ct = self.config.cut_threshold
        q = self.config.q_threshold_qpm

        # 1. Gather suspects: (suspect -> observers that crossed warning).
        suspects: Dict[int, List[int]] = {}
        for (j, i), f in flows.items():
            if f <= warning:
                continue
            if i in self.bad_peers:
                continue  # compromised peers don't police
            if not (state.online[i] and state.online[j]):
                continue
            if j not in state.adjacency[i]:
                continue
            suspects.setdefault(j, []).append(i)

        # 2. Decide every investigation against the *pre-step* state: the
        # protocol's report exchange and decisions all happen inside the
        # same 5-second window, so a peer expelled this round still
        # testified for the others.
        pending_cuts: List[Tuple[int, int]] = []  # (observer, suspect)
        for suspect, observers in sorted(suspects.items()):
            self.stats.investigations += 1
            members = set(state.known_neighbors(suspect)) - {suspect}
            # Each observer is a live neighbor, hence a group member even
            # if the published list hasn't caught up.
            members.update(observers)
            reports: Dict[int, Optional[NeighborReport]] = {}
            responders = 0
            for m in sorted(members):
                rep = self._member_report(m, suspect, state, flows, sent)
                # DD-POLICE-r (r > 1): members are cross-validated with
                # *their* buddy groups over the wider radius. A member
                # that is itself a suspect (crossed the warning at any of
                # its own neighbors) cannot vouch for this suspect -- its
                # report is discarded, defeating pairwise collusion.
                if (
                    rep is not None
                    and self.config.radius > 1
                    and m in suspects
                    and m != suspect
                ):
                    rep = None
                reports[m] = rep
                if rep is not None:
                    responders += 1
            # Message accounting: every responding member broadcasts to
            # the other members once per round (5 s dedup collapses the
            # per-observer requests).
            self.stats.traffic_messages += responders * max(0, len(members) - 1)

            convicted_by: List[int] = []
            for i in sorted(observers):
                own_out = int(round(sent.get((i, suspect), 0.0)))
                own_in = int(round(flows.get((suspect, i), 0.0)))
                other_reports = {m: r for m, r in reports.items() if m != i}
                g, s = indicators_from_reports(
                    observer=i,
                    own_out_to_j=own_out,
                    own_in_from_j=own_in,
                    reports=other_reports,
                    q=q,
                )
                guilty = g > ct or s > ct
                if guilty:
                    convicted_by.append(i)
                if guilty or self.record_clears:
                    self.judgments.record(
                        Judgment(
                            time=minute,
                            observer=i,
                            suspect=suspect,
                            g_value=g,
                            s_value=s,
                            disconnected=guilty,
                        )
                    )
            if convicted_by:
                self.stats.convictions += 1
                pending_cuts.extend((i, suspect) for i in convicted_by)

        # 3. Apply all cuts after every decision is made.
        cut_count = 0
        expelled: Set[int] = set()
        for i, suspect in pending_cuts:
            state.remove_edge(i, suspect)
            cut_count += 1
            self.stats.edges_cut += 1
            # Fully isolated peers fall off the overlay and must
            # re-bootstrap: model as churn departure.
            if not state.adjacency[suspect] and suspect not in expelled:
                state.online[suspect] = False
                expelled.add(suspect)
                self.stats.peers_expelled += 1
        return cut_count


class FluidNaiveCutoff:
    """Naive rate-cutoff baseline at fluid scale (cf. baselines.naive)."""

    def __init__(
        self,
        cutoff_qpm: float,
        bad_peers: Set[int],
        *,
        judgment_log: Optional[JudgmentLog] = None,
    ) -> None:
        if cutoff_qpm <= 0:
            raise ConfigError("cutoff_qpm must be positive")
        self.cutoff_qpm = cutoff_qpm
        self.bad_peers = set(bad_peers)
        self.judgments = judgment_log if judgment_log is not None else JudgmentLog()
        self.stats = FluidPoliceStats()

    def step(self, minute: float, state: GraphState, flows: EdgeFlows) -> int:
        cut = 0
        for (j, i), f in sorted(flows.items()):
            if f <= self.cutoff_qpm:
                continue
            if i in self.bad_peers:
                continue
            if not (state.online[i] and state.online[j]):
                continue
            if j not in state.adjacency[i]:
                continue
            self.judgments.record(
                Judgment(
                    time=minute,
                    observer=i,
                    suspect=j,
                    g_value=f / self.cutoff_qpm,
                    s_value=float("nan"),
                    disconnected=True,
                    reason="naive_cutoff",
                )
            )
            state.remove_edge(i, j)
            cut += 1
            self.stats.edges_cut += 1
            if not state.adjacency[j]:
                state.online[j] = False
                self.stats.peers_expelled += 1
        return cut
