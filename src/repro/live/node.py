"""One live overlay node: an asyncio UDP process speaking real Gnutella.

A :class:`LiveNode` is the testbed counterpart of the DES
:class:`~repro.overlay.peer.Peer` plus its slice of
:class:`~repro.overlay.network.OverlayNetwork`:

* **transport** -- an :class:`asyncio.DatagramProtocol` bound to one UDP
  socket; one overlay message per datagram via :mod:`repro.live.wire`;
  malformed datagrams are counted and dropped, never fatal.
* **liveness** -- periodic PING to every neighbor, PONG matched by GUID,
  bounded-backoff retries, and eviction of neighbors that stay silent
  (dead processes must not count as silent (0, 0) witnesses forever).
* **flooding** -- QUERY handling mirrors ``Peer._on_query`` exactly:
  per-neighbor In/Out minute counters, GUID seen-set dedup (bounded
  LRU), token-bucket processing capacity, content match against the
  shared :class:`~repro.overlay.content.ContentCatalog`, reverse-path
  QueryHit routing, TTL-decremented forwarding.
* **DD-POLICE** -- the *unmodified* :class:`repro.core.police.DDPoliceEngine`
  runs on this node. The engine was written against the DES network/peer
  surfaces; ``LiveNode`` implements both (they share no attribute
  names), with :class:`~repro.live.clock.LiveClock` standing in for the
  DES scheduler so minute rolls happen on the (compressed) wall clock.
* **attack role** -- the Fig-9/10/11 static flooder: from the attack
  minute on, ``attack_rate_qpm`` bogus single-neighbor queries per
  protocol minute, round-robin over sorted neighbors with fractional
  carry -- the same batch arithmetic as
  :class:`repro.attack.agent.DDoSAgent`.

Peers are addressed two ways at once: a :class:`~repro.overlay.ids.PeerId`
on the wire (the protocol identity) and a ``(host, port)`` UDP address
(the transport identity). Supervised swarms distribute the full address
book up front; bootstrap mode learns the mapping from a three-way
PING/PONG join handshake with seed addresses (PONG is the only message
carrying a sender identity).

Run standalone with ``python -m repro.live.node --config node.json``;
the supervisor writes one such JSON per process.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import random
import signal
import sys
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.attack.cheating import CheatStrategy
from repro.core.config import DDPoliceConfig, ExchangePolicy
from repro.errors import ConfigError, ProtocolError, WireFormatError
from repro.evidence import EvidenceConfig, SeenCache, make_seen_cache
from repro.live.clock import LiveClock, LiveTimer
from repro.live.ports import bind_udp_socket
from repro.live.wire import decode_message, encode_message
from repro.obs.trace import JsonlSink, Tracer
from repro.overlay.capacity import TokenBucket
from repro.overlay.content import ContentCatalog, ContentConfig
from repro.overlay.ids import Guid, GuidFactory, PeerId
from repro.overlay.message import (
    Bye,
    Message,
    MessageKind,
    NeighborTrafficMessage,
    Ping,
    Pong,
    Query,
    QueryHit,
)
from repro.simkit.rng import derive_seed

Address = Tuple[str, int]

#: Bound on remembered own-query issue times (success attribution LRU).
ISSUED_CACHE_LIMIT = 10_000


@dataclass(frozen=True)
class NodeConfig:
    """Everything one node process needs, JSON-serializable.

    The supervisor writes one of these per node; a hand-started node
    needs only ``node_id``, ``host``/``port``, and either ``addresses``
    + ``neighbors`` (preassigned topology) or ``seeds`` (bootstrap).
    """

    node_id: int
    host: str = "127.0.0.1"
    port: int = 0
    #: Full address book: peer id -> (host, port). Supervised swarms
    #: know everyone up front; bootstrap nodes start with only seeds.
    addresses: Dict[int, Address] = field(default_factory=dict)
    #: Preassigned neighbor ids (the generated topology's adjacency).
    neighbors: Tuple[int, ...] = ()
    #: Seed addresses for bootstrap mode (used when ``neighbors`` is empty).
    seeds: Tuple[Address, ...] = ()
    #: Peer-id space size; sizes the shared content catalog.
    n_peers: int = 2
    #: Scenario length in protocol minutes; 0 = run until signalled.
    minutes: int = 0
    #: Wall seconds per protocol minute.
    minute_s: float = 60.0
    #: Unix time of protocol t=0 (shared across the swarm so minute
    #: windows align); 0 = now.
    start_at: float = 0.0
    seed: int = 0
    ttl: int = 7
    seen_cache: int = 50_000
    #: EvidenceConfig field overrides (JSON dict, like ``police``);
    #: drives the node's seen-cache strategy and, via ``police_config``,
    #: the engine's traffic store and report-dedup window.
    evidence: Dict[str, Any] = field(default_factory=dict)
    capacity_qpm: float = 10_000.0
    queries_per_minute: float = 0.0
    #: Attack role (Fig-9/10/11 static flooder).
    agent: bool = False
    attack_start_min: int = 0
    attack_rate_qpm: float = 0.0
    cheat_strategy: str = "honest"
    #: "none" or "ddpolice".
    defense: str = "none"
    #: DDPoliceConfig field overrides (exchange_policy as its string value).
    police: Dict[str, Any] = field(default_factory=dict)
    #: Liveness timing, protocol seconds.
    ping_period_s: float = 60.0
    ping_timeout_s: float = 15.0
    ping_retries: int = 3
    #: Degree cap when accepting bootstrap joins.
    max_degree: int = 64
    stats_path: Optional[str] = None
    run_id: Optional[str] = None
    #: Startup barrier: once the socket is bound, touch ``ready_file``
    #: and wait for ``start_file`` to appear with the swarm's shared
    #: protocol t=0 (written by the supervisor after every node is
    #: ready). Replaces guessing how long interpreter start-up takes.
    ready_file: Optional[str] = None
    start_file: Optional[str] = None

    def __post_init__(self) -> None:
        if not (0 <= self.node_id < 2**24):
            raise ConfigError(f"node_id out of PeerId range: {self.node_id}")
        if self.n_peers < 2:
            raise ConfigError(f"n_peers must be >= 2, got {self.n_peers}")
        if self.minute_s <= 0:
            raise ConfigError(f"minute_s must be positive, got {self.minute_s}")
        if self.minutes < 0:
            raise ConfigError(f"minutes must be non-negative, got {self.minutes}")
        if not (1 <= self.ttl <= 32):
            raise ConfigError(f"ttl out of range [1, 32]: {self.ttl}")
        if self.seen_cache < 64:
            raise ConfigError(f"seen_cache must be >= 64, got {self.seen_cache}")
        if self.capacity_qpm <= 0:
            raise ConfigError(f"capacity_qpm must be positive, got {self.capacity_qpm}")
        if self.queries_per_minute < 0 or self.attack_rate_qpm < 0:
            raise ConfigError("query rates must be non-negative")
        if self.ping_period_s <= 0 or self.ping_timeout_s <= 0:
            raise ConfigError("ping_period_s and ping_timeout_s must be positive")
        if self.ping_retries < 0:
            raise ConfigError(f"ping_retries must be non-negative, got {self.ping_retries}")
        if self.defense not in ("none", "ddpolice"):
            raise ConfigError(f"unknown defense: {self.defense!r}")
        if self.max_degree < 1:
            raise ConfigError(f"max_degree must be >= 1, got {self.max_degree}")
        self.evidence_config()  # bad evidence overrides fail at parse time

    def evidence_config(self) -> EvidenceConfig:
        return EvidenceConfig(**self.evidence)

    def police_config(self) -> DDPoliceConfig:
        fields = dict(self.police)
        policy = fields.pop("exchange_policy", None)
        if policy is not None:
            fields["exchange_policy"] = ExchangePolicy(policy)
        evidence = fields.get("evidence")
        if isinstance(evidence, dict):
            fields["evidence"] = EvidenceConfig(**evidence)
        return DDPoliceConfig(**fields)

    def to_dict(self) -> Dict[str, Any]:
        d = dataclasses.asdict(self)
        d["addresses"] = {str(k): list(v) for k, v in self.addresses.items()}
        d["neighbors"] = list(self.neighbors)
        d["seeds"] = [list(s) for s in self.seeds]
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "NodeConfig":
        d = dict(d)
        d["addresses"] = {
            int(k): (v[0], int(v[1])) for k, v in d.get("addresses", {}).items()
        }
        d["neighbors"] = tuple(int(n) for n in d.get("neighbors", ()))
        d["seeds"] = tuple((s[0], int(s[1])) for s in d.get("seeds", ()))
        return cls(**d)


class _MinuteStats:
    """Counters reset at every minute roll (one JSONL record each)."""

    __slots__ = (
        "issued", "succeeded", "response_sum_s", "attack_sent", "sent",
        "received", "malformed", "unroutable", "dropped_capacity",
        "dropped_duplicate", "dropped_ttl", "hits_generated", "hits_routed",
        "hits_dropped", "evicted", "protocol_errors",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)
        self.response_sum_s = 0.0

    def as_fields(self) -> Dict[str, Any]:
        return {name: getattr(self, name) for name in self.__slots__}


class LiveNode(asyncio.DatagramProtocol):
    """One overlay node over a real UDP socket.

    Doubles as the ``network`` *and* ``peer`` facade for the unmodified
    DD-POLICE engine: the network side is ``sim``/``now``/``guid_factory``
    /``tracer``/``minute_listeners``/``transmit``/``disconnect``, the
    peer side ``id``/``online``/``neighbors``/``send_control``/the hook
    lists/the minute snapshots. The two surfaces are disjoint, so one
    object can serve both without adapters.
    """

    def __init__(
        self,
        config: NodeConfig,
        loop: asyncio.AbstractEventLoop,
        *,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = config
        self._loop = loop
        self.id = PeerId(config.node_id)
        start_at = config.start_at or time.time()
        origin = loop.time() + (start_at - time.time())
        self.sim = LiveClock(loop, minute_s=config.minute_s, origin=origin)
        self._started = False
        self.guid_factory = GuidFactory(
            random.Random(derive_seed(config.seed, "guid", config.node_id))
        )
        self.tracer = tracer
        self.minute_listeners: List[Any] = []

        # Peer facade state (mirrors overlay.peer.Peer).
        self.neighbors: set = set()
        self.control_handlers: List[Any] = []
        self.disconnect_listeners: List[Any] = []
        self.connect_listeners: List[Any] = []
        self.out_query_window: Dict[PeerId, int] = {}
        self.in_query_window: Dict[PeerId, int] = {}
        self.last_minute_out: Dict[PeerId, int] = {}
        self.last_minute_in: Dict[PeerId, int] = {}
        self.processing = TokenBucket(rate_per_min=config.capacity_qpm)
        self._seen: SeenCache = make_seen_cache(
            config.evidence_config(), limit=config.seen_cache
        )
        self._route_back: "OrderedDict[bytes, PeerId]" = OrderedDict()
        #: Own issued queries: guid -> issue time (success attribution).
        self._issued: "OrderedDict[bytes, float]" = OrderedDict()

        # Transport identity maps.
        self._addr_of: Dict[PeerId, Address] = {
            PeerId(pid): addr for pid, addr in config.addresses.items()
        }
        self._id_at: Dict[Address, PeerId] = {
            addr: pid for pid, addr in self._addr_of.items()
        }
        self._pending_join: Dict[Address, int] = {}

        self._rng = random.Random(derive_seed(config.seed, "node", config.node_id))
        self.catalog = ContentCatalog(
            ContentConfig(seed=derive_seed(config.seed, "content")), config.n_peers
        )

        # Liveness: neighbor -> (awaited pong guid, retry attempt).
        self._pending_ping: Dict[PeerId, Tuple[bytes, int]] = {}

        self._minute = 0
        self._m = _MinuteStats()
        self._attack_carry = 0.0
        self._attack_rr = 0
        self._attack_nonce = 0
        self._timers: List[LiveTimer] = []
        self._closing = False
        self.done = asyncio.Event()
        self.transport: Optional[asyncio.DatagramTransport] = None
        self.engine = None

    # ------------------------------------------------------------------
    # network facade (what DDPoliceEngine calls "network")
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    def transmit(self, src: PeerId, dst: PeerId, msg: Message) -> None:
        del src  # only this node sends from here
        self._send(dst, msg)

    def disconnect(
        self, a: PeerId, b: PeerId, reason_code: int = Bye.REASON_NORMAL
    ) -> None:
        """Drop *our* side of the link (the engine already sent the Bye)."""
        nb = b if a == self.id else a
        self._drop_link(nb, reason_code)

    # ------------------------------------------------------------------
    # peer facade (what DDPoliceEngine calls "peer")
    # ------------------------------------------------------------------
    @property
    def online(self) -> bool:
        return not self._closing

    def send_control(self, dst: PeerId, msg: Message) -> None:
        if dst not in self.neighbors and not isinstance(
            msg, (Bye, NeighborTrafficMessage)
        ):
            raise ProtocolError(f"{self.id} sending {msg.kind} to non-neighbor {dst}")
        self._send(dst, msg)

    # ------------------------------------------------------------------
    # links
    # ------------------------------------------------------------------
    def _add_link(self, nb: PeerId) -> None:
        if nb == self.id or nb in self.neighbors:
            return
        self.neighbors.add(nb)
        self.out_query_window.setdefault(nb, 0)
        self.in_query_window.setdefault(nb, 0)
        for listener in list(self.connect_listeners):
            listener(nb)

    def _drop_link(self, nb: PeerId, reason_code: int) -> None:
        if nb not in self.neighbors:
            return
        self.neighbors.discard(nb)
        self.out_query_window.pop(nb, None)
        self.in_query_window.pop(nb, None)
        self._pending_ping.pop(nb, None)
        for listener in list(self.disconnect_listeners):
            listener(nb, reason_code)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def connection_made(self, transport) -> None:  # type: ignore[override]
        self.transport = transport

    def _sendto(self, raw: bytes, addr: Address) -> None:
        if self.transport is None or self.transport.is_closing():
            return
        self.transport.sendto(raw, addr)
        self._m.sent += 1

    def _send(self, dst: PeerId, msg: Message) -> None:
        addr = self._addr_of.get(dst)
        if addr is None:
            self._m.unroutable += 1
            return
        if msg.kind is MessageKind.QUERY and dst in self.neighbors:
            self.out_query_window[dst] = self.out_query_window.get(dst, 0) + 1
        self._sendto(encode_message(msg), addr)

    def datagram_received(self, data: bytes, addr: Address) -> None:
        try:
            msg = decode_message(data)
        except WireFormatError:
            self._m.malformed += 1
            return
        self._m.received += 1
        src = self._id_at.get(addr)
        try:
            if src is None:
                self._on_unknown_sender(addr, msg)
            else:
                self._dispatch(src, msg)
        except ProtocolError:
            # Semantically invalid but well-formed input from a remote
            # (e.g. a control message missing a required field): the
            # overlay must survive hostile peers, so count and drop.
            self._m.protocol_errors += 1

    def error_received(self, exc: Exception) -> None:
        # ICMP port-unreachable from a crashed peer; liveness will evict.
        del exc

    def _dispatch(self, src: PeerId, msg: Message) -> None:
        if self._closing:
            return
        kind = msg.kind
        if kind is MessageKind.QUERY:
            self._on_query(src, msg)
        elif kind is MessageKind.QUERY_HIT:
            self._on_query_hit(src, msg)
        elif kind is MessageKind.PING:
            self._on_ping(src, msg)
        elif kind is MessageKind.PONG:
            self._on_pong(src, msg)
        elif kind is MessageKind.BYE:
            self._drop_link(src, msg.reason_code)
            self._on_control(src, msg)
        else:  # NEIGHBOR_LIST / NEIGHBOR_TRAFFIC
            self._on_control(src, msg)

    def _on_control(self, src: PeerId, msg: Message) -> None:
        for handler in list(self.control_handlers):
            handler(src, msg)

    # ------------------------------------------------------------------
    # query plane (mirrors Peer._on_query / _on_query_hit)
    # ------------------------------------------------------------------
    def _remember_seen(self, guid: Guid) -> None:
        self._seen.add(guid.raw)

    def _on_query(self, src: PeerId, msg: Query) -> None:
        if src in self.neighbors:
            self.in_query_window[src] = self.in_query_window.get(src, 0) + 1
        key = msg.guid.raw
        if key in self._seen:
            self._m.dropped_duplicate += 1
            return
        self._remember_seen(msg.guid)
        self._route_back[key] = src
        while len(self._route_back) > self.config.seen_cache:
            self._route_back.popitem(last=False)

        if not self.processing.try_consume(self.now):
            self._m.dropped_capacity += 1
            return

        obj = self._match_content(msg)
        if obj is not None:
            self._m.hits_generated += 1
            hit = QueryHit(
                guid=self.guid_factory.new(),
                ttl=msg.hops + 1,
                hops=0,
                responder=self.id,
                result_count=1,
                query_guid=msg.guid,
            )
            self._send(src, hit)

        if msg.ttl <= 1:
            self._m.dropped_ttl += 1
            return
        fwd = msg.aged_copy()
        for nb in list(self.neighbors):
            if nb != src:
                self._send(nb, fwd)

    def _match_content(self, msg: Query) -> Optional[int]:
        try:
            obj = self.catalog.object_for_keywords(msg.keywords)
        except ConfigError:
            return None  # bogus attack keywords never resolve
        return obj if self.catalog.peer_has(self.id.value, obj) else None

    def _on_query_hit(self, src: PeerId, msg: QueryHit) -> None:
        del src
        if msg.query_guid is None:
            raise ProtocolError("QueryHit without query_guid")
        key = msg.query_guid.raw
        back = self._route_back.get(key)
        if back is None:
            issued_at = self._issued.pop(key, None)
            if issued_at is not None:
                # First response to one of our own queries: success.
                self._m.succeeded += 1
                self._m.response_sum_s += max(0.0, self.now - issued_at)
            elif key not in self._seen:
                self._m.hits_dropped += 1
            return
        if back not in self.neighbors:
            self._m.hits_dropped += 1
            return
        self._m.hits_routed += 1
        self._send(back, msg.aged_copy() if msg.ttl > 0 else msg)

    # ------------------------------------------------------------------
    # liveness + bootstrap (PING/PONG)
    # ------------------------------------------------------------------
    def _on_ping(self, src: PeerId, msg: Ping) -> None:
        pong = Pong(
            guid=msg.guid,
            ttl=1,
            hops=0,
            responder=self.id,
            shared_files=len(self.catalog.peer_objects.get(self.id.value, ())),
        )
        self._send(src, pong)

    def _on_pong(self, src: PeerId, msg: Pong) -> None:
        pending = self._pending_ping.get(src)
        if pending is not None and pending[0] == msg.guid.raw:
            del self._pending_ping[src]
        self._on_control(src, msg)

    def _on_unknown_sender(self, addr: Address, msg: Message) -> None:
        """Join traffic from an address outside the book (bootstrap mode).

        PONG is the only message carrying a sender identity, so joining
        is a three-way handshake: joiner PINGs a seed; the seed PONGs
        back (no link yet -- it cannot name the joiner); the joiner adds
        the link and confirms with a PONG of its own, from which the
        seed learns the address mapping and reciprocates the link.
        """
        if msg.kind is MessageKind.PING:
            pong = Pong(
                guid=msg.guid, ttl=1, hops=0, responder=self.id, shared_files=0
            )
            self._sendto(encode_message(pong), addr)
            return
        if msg.kind is not MessageKind.PONG or msg.responder is None:
            self._m.unroutable += 1
            return
        pid = msg.responder
        if pid == self.id:
            return
        self._addr_of[pid] = addr
        self._id_at[addr] = pid
        if addr in self._pending_join:
            # Seed answered our join PING: link up and confirm.
            del self._pending_join[addr]
            self._add_link(pid)
            confirm = Pong(
                guid=self.guid_factory.new(), ttl=1, hops=0, responder=self.id
            )
            self._send(pid, confirm)
        elif len(self.neighbors) < self.config.max_degree:
            # A joiner's confirmation PONG: reciprocate the link.
            self._add_link(pid)
        else:
            bye = Bye(
                guid=self.guid_factory.new(),
                ttl=1,
                hops=0,
                reason_code=Bye.REASON_NORMAL,
                reason_text="full",
            )
            self._send(pid, bye)

    def _ping_round(self) -> None:
        if self._closing:
            return
        for addr in list(self._pending_join):
            # Unanswered join PINGs are re-sent every round.
            ping = Ping(guid=self.guid_factory.new(), ttl=1)
            self._sendto(encode_message(ping), addr)
        for nb in list(self.neighbors):
            if nb in self._pending_ping:
                continue  # retry chain already running
            self._send_liveness_ping(nb, 0)
        jitter = self._rng.uniform(0.0, self.config.ping_period_s / 10.0)
        self._schedule(self.config.ping_period_s + jitter, self._ping_round)

    def _send_liveness_ping(self, nb: PeerId, attempt: int) -> None:
        ping = Ping(guid=self.guid_factory.new(), ttl=1)
        self._pending_ping[nb] = (ping.guid.raw, attempt)
        self._send(nb, ping)
        # Bounded backoff: timeout doubles per retry, capped at the period.
        timeout = min(
            self.config.ping_timeout_s * (2**attempt), self.config.ping_period_s
        )
        self._schedule(timeout, self._ping_timeout, nb, ping.guid.raw)

    def _ping_timeout(self, nb: PeerId, guid_raw: bytes) -> None:
        if self._closing:
            return
        pending = self._pending_ping.get(nb)
        if pending is None or pending[0] != guid_raw:
            return  # answered, or superseded by a newer ping
        attempt = pending[1] + 1
        if attempt > self.config.ping_retries:
            del self._pending_ping[nb]
            self._m.evicted += 1
            self._drop_link(nb, Bye.REASON_NORMAL)
            return
        self._send_liveness_ping(nb, attempt)

    # ------------------------------------------------------------------
    # workload + attack
    # ------------------------------------------------------------------
    def _issue_query(self, keywords: Tuple[str, ...], target: Optional[PeerId]) -> None:
        msg = Query(
            guid=self.guid_factory.new(), ttl=self.config.ttl, hops=0, keywords=keywords
        )
        self._remember_seen(msg.guid)
        if target is None:
            self._issued[msg.guid.raw] = self.now
            while len(self._issued) > ISSUED_CACHE_LIMIT:
                self._issued.popitem(last=False)
            self._m.issued += 1
            for nb in list(self.neighbors):
                self._send(nb, msg)
        else:
            self._m.attack_sent += 1
            self._send(target, msg)

    def _workload_tick(self) -> None:
        if self._closing:
            return
        if self.now >= 0 and self.neighbors:
            obj = self.catalog.sample_object(self._rng)
            self._issue_query(self.catalog.keywords_for(obj), None)
        self._schedule(
            self._rng.expovariate(self.config.queries_per_minute / 60.0),
            self._workload_tick,
        )

    def _attack_tick(self) -> None:
        """One 1-protocol-second flooder batch (DDoSAgent arithmetic)."""
        if self._closing:
            return
        targets = sorted(self.neighbors, key=lambda p: p.value)
        if targets:
            per_batch = self.config.attack_rate_qpm / 60.0 + self._attack_carry
            count = int(per_batch)
            self._attack_carry = per_batch - count
            for i in range(count):
                nb = targets[(self._attack_rr + i) % len(targets)]
                self._attack_nonce += 1
                keywords = ("bogus", f"x{self.id.value}n{self._attack_nonce}")
                self._issue_query(keywords, nb)
            self._attack_rr += count
        self._schedule(1.0, self._attack_tick)

    # ------------------------------------------------------------------
    # minute roll + stats
    # ------------------------------------------------------------------
    def _schedule(self, delay: float, fn, *args) -> LiveTimer:
        timer = self.sim.schedule_in(delay, fn, *args)
        self._timers.append(timer)
        if len(self._timers) > 256:
            self._timers = [t for t in self._timers if t.pending]
        return timer

    def _roll_minute(self) -> None:
        if self._closing:
            return
        self._minute += 1
        now = self.now
        out_snap = dict(self.out_query_window)
        in_snap = dict(self.in_query_window)
        for k in self.out_query_window:
            self.out_query_window[k] = 0
        for k in self.in_query_window:
            self.in_query_window[k] = 0
        self.last_minute_out = out_snap
        self.last_minute_in = in_snap

        if self.tracer is not None:
            self.tracer.event(
                "live.minute",
                t=now,
                node=self.id.value,
                minute=self._minute,
                agent=int(self.config.agent),
                neighbors=len(self.neighbors),
                **self._m.as_fields(),
            )
        self._m = _MinuteStats()

        for listener in list(self.minute_listeners):
            listener(self._minute, now)

        if self.config.minutes and self._minute >= self.config.minutes:
            self._loop.call_soon(self.begin_shutdown)
        else:
            self._schedule_minute_roll()

    def _schedule_minute_roll(self) -> None:
        target = (self._minute + 1) * 60.0
        self._schedule(max(0.0, target - self.now), self._roll_minute)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def rebase(self, start_at: float) -> None:
        """Re-anchor protocol t=0 at unix time ``start_at``.

        Used by the supervised startup barrier: the shared start instant
        is only known once every node in the swarm is up, which is after
        this node's constructor ran. Must be called before :meth:`start`.
        """
        if self._started:
            raise ConfigError("rebase() must run before start()")
        self.sim.origin = self._loop.time() + (start_at - time.time())

    def start(self) -> None:
        """Arm timers and the defense; call once the endpoint is up."""
        self._started = True
        for nb_int in self.config.neighbors:
            self._add_link(PeerId(nb_int))
        for seed_addr in self.config.seeds:
            if seed_addr != (self.config.host, self.config.port):
                self._pending_join[seed_addr] = 0
                ping = Ping(guid=self.guid_factory.new(), ttl=1)
                self._sendto(encode_message(ping), seed_addr)

        if self.config.defense == "ddpolice":
            from repro.core.police import DDPoliceEngine

            self.engine = DDPoliceEngine(
                self,
                self,
                self.config.police_config(),
                cheat_strategy=CheatStrategy(self.config.cheat_strategy),
                rng=random.Random(
                    derive_seed(self.config.seed, "police", self.config.node_id)
                ),
            )

        self._schedule_minute_roll()
        start_gap = max(0.0, -self.now)
        if self.config.queries_per_minute > 0:
            self._schedule(
                start_gap
                + self._rng.expovariate(self.config.queries_per_minute / 60.0),
                self._workload_tick,
            )
        if self.config.agent and self.config.attack_rate_qpm > 0:
            attack_at = self.config.attack_start_min * 60.0
            self._schedule(max(start_gap, attack_at - self.now), self._attack_tick)
        self._schedule(
            start_gap + self._rng.uniform(0.0, self.config.ping_period_s),
            self._ping_round,
        )

    def begin_shutdown(self, *, reason_code: int = Bye.REASON_NORMAL) -> None:
        """Graceful drain: Bye every neighbor, flush stats, close, exit."""
        if self._closing:
            return
        self._closing = True
        for nb in list(self.neighbors):
            bye = Bye(
                guid=self.guid_factory.new(),
                ttl=1,
                hops=0,
                reason_code=reason_code,
                reason_text="drain",
            )
            self._send(nb, bye)
        if self.engine is not None:
            self.engine.stop()
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        if self.tracer is not None:
            self.tracer.event(
                "live.final",
                t=self.now,
                node=self.id.value,
                agent=int(self.config.agent),
                minutes=self._minute,
                neighbors=len(self.neighbors),
                clean=1,
            )
            self.tracer.close()
        if self.transport is not None:
            self.transport.close()
        self.done.set()


#: How long a supervised node waits for the start barrier to resolve.
START_BARRIER_TIMEOUT_S = 120.0


async def _await_start(node: "LiveNode", path: str) -> None:
    """Wait for the supervisor's start file, then re-anchor the clock.

    The file is written atomically, so appearance implies completeness.
    A SIGTERM during the barrier (``node.done`` set) aborts the wait.
    """
    deadline = time.monotonic() + START_BARRIER_TIMEOUT_S
    while not node.done.is_set():
        try:
            with open(path, "r", encoding="utf-8") as fh:
                start_at = float(json.load(fh)["start_at"])
        except (OSError, ValueError, KeyError):
            if time.monotonic() > deadline:
                raise ConfigError(f"start barrier never resolved: {path}")
            await asyncio.sleep(0.02)
            continue
        node.rebase(start_at)
        return


async def run_node(config: NodeConfig) -> None:
    """Bind, run to completion (or signal), drain cleanly."""
    loop = asyncio.get_running_loop()
    sock = bind_udp_socket(config.host, config.port)
    sock.setblocking(False)
    tracer = None
    if config.stats_path:
        tracer = Tracer(sinks=[JsonlSink(config.stats_path)], run=config.run_id)
    node = LiveNode(config, loop, tracer=tracer)
    await loop.create_datagram_endpoint(lambda: node, sock=sock)
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, node.begin_shutdown)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    if config.ready_file:
        with open(config.ready_file, "w", encoding="utf-8") as fh:
            fh.write("ready\n")
    if config.start_file:
        await _await_start(node, config.start_file)
    if not node.done.is_set():
        node.start()
    await node.done.wait()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.live.node", description="Run one live overlay node."
    )
    parser.add_argument(
        "--config", required=True, help="Path to the node's JSON config."
    )
    opts = parser.parse_args(argv)
    with open(opts.config, "r", encoding="utf-8") as fh:
        config = NodeConfig.from_dict(json.load(fh))
    try:
        asyncio.run(run_node(config))
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C race
        return 130
    return 0


if __name__ == "__main__":
    sys.exit(main())
