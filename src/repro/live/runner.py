"""The ``live`` backend: run one experiment Case as a real UDP swarm.

Adapts the backend-neutral :class:`repro.experiments.spec.Case` to a
:class:`repro.live.supervisor.SwarmConfig`, runs the swarm, and maps the
collected JSONL stats onto the :class:`~repro.experiments.spec.CaseResult`
contract the scenario drivers consume -- same row/steady/error semantics
as the DES extraction, so ``repro run fig9 --backend live`` flows through
the unchanged agent-sweep driver.

Scale adaptation: a live node is an OS process, so the case's abstract
``n`` is capped at the :class:`~repro.live.spec.LiveSpec` swarm size and
the agent count is scaled proportionally (keeping the attack *density*,
which is what the Fig-9/10/11 curves are about).

Features the testbed does not implement are rejected loudly with
:class:`~repro.errors.ConfigError` -- fault injection schedules, adaptive
adversaries, the traceback baseline, collusion, and obs attachments (the
swarm's per-node JSONL *is* its observability story).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.attack.cheating import CheatStrategy
from repro.errors import ConfigError
from repro.faults.plan import FaultPlan
from repro.live.supervisor import Supervisor, SwarmConfig, SwarmResult

#: Set to a directory to keep each case's swarm artifacts (debugging).
ENV_OUT_DIR = "REPRO_LIVE_OUT_DIR"


def _reject_unsupported(case: Any) -> None:
    if case.faults != FaultPlan():
        raise ConfigError(
            "backend 'live' cannot inject fault schedules (DES only)"
        )
    if case.adaptive.strategy != "static":
        raise ConfigError(
            f"backend 'live' cannot simulate adaptive strategy "
            f"{case.adaptive.strategy!r} (DES only)"
        )
    if case.defense == "traceback":
        raise ConfigError("backend 'live' has no traceback defense (DES only)")
    if case.workload.cheat is CheatStrategy.COLLUDE:
        raise ConfigError(
            "backend 'live' cannot simulate cheat_strategy 'collude' (DES only)"
        )
    if case.obs is not None:
        raise ConfigError(
            "backend 'live' has per-node JSONL stats; obs attachments are "
            "DES/fluid only"
        )


def swarm_config_for(case: Any) -> SwarmConfig:
    """The swarm a case maps to (pure; unit-testable without sockets)."""
    _reject_unsupported(case)
    live = case.live
    n_nodes = min(case.n, live.n_nodes)
    if case.num_agents > 0:
        if n_nodes == case.n:
            num_agents = case.num_agents
        else:
            num_agents = max(1, round(case.num_agents * n_nodes / case.n))
        num_agents = min(num_agents, n_nodes - 1)
    else:
        num_agents = 0
    return SwarmConfig(
        n_nodes=n_nodes,
        minutes=case.minutes,
        seed=case.seed,
        minute_s=live.minute_s,
        host=live.host,
        port_base=live.port_base,
        num_agents=num_agents,
        attack_start_min=case.attack_start_min,
        attack_rate_qpm=case.workload.attack_rate_qpm,
        cheat_strategy=case.workload.cheat_strategy,
        queries_per_minute=case.workload.queries_per_minute,
        capacity_qpm=case.workload.capacity_qpm,
        defense=case.defense,
        police=case.police,
        topology_model=case.topology if case.topology is not None else "ba",
        ba_m=case.ba_m if case.ba_m is not None else 3,
        ttl=live.ttl,
        seen_cache=live.seen_cache,
        ping_period_s=live.ping_period_s,
        ping_timeout_s=live.ping_timeout_s,
        ping_retries=live.ping_retries,
        spawn_stagger_s=live.spawn_stagger_s,
        drain_timeout_s=live.drain_timeout_s,
        run_id=f"live-{case.seed}",
    )


def _per_minute(result: SwarmResult) -> Dict[int, Dict[str, float]]:
    """Swarm-wide per-minute aggregates with origin-aware attribution.

    An agent's good workload counts toward issued/succeeded *before* the
    attack minute and is excluded from it onward -- the live analogue of
    the DES origin-aware reclassification (DES agents also keep their
    normal workload running during the attack).
    """
    attack_from = result.config.attack_start_min
    agents_active = result.config.num_agents > 0
    out: Dict[int, Dict[str, float]] = {}
    for rec in result.minute_records:
        minute = int(rec["minute"])
        agg = out.setdefault(
            minute,
            {"issued": 0.0, "succeeded": 0.0, "response_sum_s": 0.0, "messages": 0.0},
        )
        agg["messages"] += rec["sent"]
        if agents_active and rec.get("agent") and minute > attack_from:
            continue
        agg["issued"] += rec["issued"]
        agg["succeeded"] += rec["succeeded"]
        agg["response_sum_s"] += rec["response_sum_s"]
    return out


def case_result_from_swarm(case: Any, result: SwarmResult) -> Any:
    """Map collected swarm stats onto the CaseResult contract."""
    from repro.experiments.spec import CaseResult

    minutes = _per_minute(result)
    rows: List[Tuple[float, float]] = []
    for minute in sorted(minutes):
        agg = minutes[minute]
        rate = agg["succeeded"] / agg["issued"] if agg["issued"] else 0.0
        rows.append((minute * 60.0, rate))

    steady: Optional[Tuple[float, float, float]] = None
    if case.settle_min is not None:
        settle_s = case.settle_min * 60.0
        horizon = case.minutes * 60.0 + 1.0
        window = [m for m in sorted(minutes) if settle_s <= m * 60.0 < horizon]
        if window:
            traffic = sum(minutes[m]["messages"] for m in window) / len(window)
            resp_vals = []
            succ_vals = []
            for m in window:
                agg = minutes[m]
                resp_vals.append(
                    agg["response_sum_s"] / agg["succeeded"] if agg["succeeded"] else 0.0
                )
                succ_vals.append(
                    agg["succeeded"] / agg["issued"] if agg["issued"] else 0.0
                )
            steady = (
                traffic / 1000.0,
                sum(resp_vals) / len(resp_vals),
                sum(succ_vals) / len(succ_vals),
            )
        else:
            steady = (0.0, 0.0, 0.0)

    agent_ids = result.agent_ids
    cut_suspects: Dict[int, float] = {}
    for rec in result.cut_events():
        suspect = int(rec["suspect"])
        t = float(rec["t"])
        if suspect not in cut_suspects or t < cut_suspects[suspect]:
            cut_suspects[suspect] = t

    # JudgmentLog.error_counts semantics: false_negative = distinct good
    # peers ever disconnected as suspects; false_positive = bad peers
    # never disconnected by anyone. Without the defense there are no
    # judgments at all, so both read 0 (the DES contract).
    if case.defense == "ddpolice":
        fn = len([s for s in cut_suspects if s not in agent_ids])
        fp = len([a for a in agent_ids if a not in cut_suspects])
    else:
        fn = fp = 0

    latency: Optional[float] = None
    caught = 0
    if agent_ids:
        attack_start_s = case.attack_start_min * 60.0
        censored = case.minutes * 60.0 - attack_start_s
        samples = []
        for a in sorted(agent_ids):
            if a in cut_suspects:
                caught += 1
                samples.append(max(0.0, cut_suspects[a] - attack_start_s))
            else:
                samples.append(censored)
        latency = sum(samples) / len(samples)

    return CaseResult(
        rows=tuple(rows),
        steady=steady,
        false_negative=fn,
        false_positive=fp,
        online_mean=0.0,
        churn_events=0,
        detection_latency_s=latency,
        caught_attackers=caught,
        total_attackers=len(agent_ids),
    )


def run_live_case(case: Any) -> Any:
    """Run one case as a real swarm (the registered ``live`` task_fn)."""
    swarm = swarm_config_for(case)
    keep_dir = os.environ.get(ENV_OUT_DIR)
    if keep_dir:
        out_dir = Path(keep_dir) / f"case-{case.seed}-k{case.num_agents}-{case.defense}"
        result = Supervisor(swarm, out_dir).run()
    else:
        with tempfile.TemporaryDirectory(prefix="repro-live-") as tmp:
            result = Supervisor(swarm, Path(tmp)).run()
    return case_result_from_swarm(case, result)
