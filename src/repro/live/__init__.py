"""repro.live: real-socket UDP testbed running DD-POLICE.

The paper validated DD-POLICE on a physical testbed; this package is the
reproduction's equivalent -- hundreds of asyncio UDP node *processes* on
localhost speaking the 23-byte Gnutella wire format of
:mod:`repro.core.wire` and running the real :class:`repro.core.police`
evidence engine against wall-clock minute rolls.

Layout:

* :mod:`repro.live.wire` -- datagram framing: one message per UDP
  datagram, encode/decode dispatch over every payload descriptor.
* :mod:`repro.live.clock` -- :class:`LiveClock`, the wall-clock scheduler
  facade that lets the unmodified DES-facing police engine run in
  (optionally compressed) real time.
* :mod:`repro.live.ports` -- UDP port allocation with ``EADDRINUSE``
  retry and the ``$REPRO_LIVE_PORT_BASE`` deterministic override.
* :mod:`repro.live.node` -- one overlay node: PING/PONG liveness, TTL
  flood with bounded seen-set dedup, content matching, DD-POLICE, and
  the static-flooder attack role.
* :mod:`repro.live.supervisor` -- spawns and babysits the node swarm,
  then aggregates per-node JSONL stats into the minute-table format.
* :mod:`repro.live.spec` -- :class:`LiveSpec`, the sizing layer the
  experiment specs carry for the ``live`` backend.
* :mod:`repro.live.runner` -- the :class:`~repro.experiments.spec.Case`
  adapter behind the registered ``live`` backend.

See docs/LIVE.md for the architecture and operating guide.
"""

from repro.live.spec import LiveSpec, live_grid_for

__all__ = ["LiveSpec", "live_grid_for"]
