"""Wall-clock scheduler facade for the live testbed.

The DD-POLICE engine and :class:`repro.simkit.timers.PeriodicTask` were
written against the DES scheduler surface: ``sim.schedule_in(delay, fn,
*args, priority=...)`` returning a cancellable handle, plus a ``now``
in protocol seconds. :class:`LiveClock` provides that exact surface on
top of the asyncio event loop, with a single twist -- time compression.

``minute_s`` wall seconds make one protocol "minute"; ``now`` and
``schedule_in`` speak protocol seconds throughout, so the engine's
evidence arithmetic (2-minute exchange period, 5-second collection
window, per-minute thresholds) runs unmodified while the testbed
finishes a 12-minute scenario in seconds.

``priority`` is accepted and ignored: the DES uses it to order events
at the same instant, a concept with no meaning on a wall clock.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional


class LiveTimer:
    """Cancellable handle mirroring the DES scheduler's event handle."""

    __slots__ = ("_handle", "_fired")

    def __init__(self, handle: Optional[asyncio.TimerHandle] = None) -> None:
        self._handle = handle
        self._fired = False

    def _mark_fired(self) -> None:
        self._fired = True

    def cancel(self) -> None:
        if self._handle is not None and not self._fired:
            self._handle.cancel()
        self._fired = True

    @property
    def pending(self) -> bool:
        return not self._fired and self._handle is not None and not self._handle.cancelled()


class LiveClock:
    """Protocol-time clock and scheduler over an asyncio event loop.

    ``origin`` is the loop time corresponding to protocol t=0; the
    supervisor distributes a shared unix start instant so every node's
    minute windows align, and each node converts it to loop time.
    """

    def __init__(
        self, loop: asyncio.AbstractEventLoop, *, minute_s: float, origin: float
    ) -> None:
        if minute_s <= 0:
            raise ValueError(f"minute_s must be positive, got {minute_s}")
        self._loop = loop
        self.minute_s = minute_s
        #: Protocol seconds per wall second.
        self.time_scale = 60.0 / minute_s
        self.origin = origin

    @property
    def now(self) -> float:
        """Current protocol time in seconds (0 at ``origin``)."""
        return (self._loop.time() - self.origin) * self.time_scale

    def wall_delay(self, protocol_delay: float) -> float:
        """Wall seconds corresponding to a protocol-seconds delay."""
        return max(0.0, protocol_delay) / self.time_scale

    def schedule_in(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> LiveTimer:
        """Run ``fn(*args)`` after ``delay`` protocol seconds."""
        del priority  # same-instant ordering is meaningless on a wall clock
        timer = LiveTimer()

        def fire() -> None:
            timer._mark_fired()
            fn(*args)

        timer._handle = self._loop.call_later(self.wall_delay(delay), fire)
        return timer
