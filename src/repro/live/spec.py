"""Sizing layer for the ``live`` backend.

A live swarm is bounded by the host, not by the model: every overlay
node is an OS process with a bound UDP socket, so the 20,000-peer paper
scale of the DES backends is out of reach on one machine. ``LiveSpec``
carries the testbed-specific knobs -- swarm size cap, wall seconds per
protocol "minute", port policy, liveness timing -- alongside the
abstract :class:`~repro.experiments.spec.Scale`, so one experiment spec
drives all three backends and ``--scale`` picks a sane swarm for each
tier.

The module imports only :mod:`repro.errors` so the experiment layer can
embed :class:`LiveSpec` in its dataclasses without importing asyncio or
socket machinery (which must stay lazy for ``pmap`` workers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class LiveSpec:
    """How to size and pace a live swarm for one experiment scale.

    ``minute_s`` is the wall-clock duration of one protocol minute; all
    protocol timing (minute rolls, the 2-minute neighbor-list exchange,
    PING periods, workload rates) is compressed by the same factor, so
    the DD-POLICE evidence arithmetic is unchanged -- only the clock
    runs faster.
    """

    name: str = "smoke"
    #: Cap on node processes; the runner uses ``min(case.n, n_nodes)``.
    n_nodes: int = 25
    #: Wall seconds per protocol minute (60.0 = real time).
    minute_s: float = 0.5
    host: str = "127.0.0.1"
    #: Fixed base port; None defers to ``$REPRO_LIVE_PORT_BASE`` or the
    #: kernel's ephemeral range.
    port_base: Optional[int] = None
    #: Wall-clock gap between consecutive node spawns.
    spawn_stagger_s: float = 0.01
    #: Wall-clock budget for the SIGTERM drain before SIGKILL.
    drain_timeout_s: float = 10.0
    #: Liveness timing, in protocol seconds (compressed like the rest).
    ping_period_s: float = 60.0
    ping_timeout_s: float = 15.0
    ping_retries: int = 3
    #: Flood parameters.
    ttl: int = 7
    seen_cache: int = 50_000

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ConfigError(f"n_nodes must be >= 2, got {self.n_nodes}")
        if self.minute_s <= 0:
            raise ConfigError(f"minute_s must be positive, got {self.minute_s}")
        if self.port_base is not None and not (1024 <= self.port_base <= 65_535):
            raise ConfigError(
                f"port_base out of range [1024, 65535]: {self.port_base}"
            )
        if self.spawn_stagger_s < 0:
            raise ConfigError(
                f"spawn_stagger_s must be non-negative, got {self.spawn_stagger_s}"
            )
        if self.drain_timeout_s <= 0:
            raise ConfigError(
                f"drain_timeout_s must be positive, got {self.drain_timeout_s}"
            )
        if self.ping_period_s <= 0 or self.ping_timeout_s <= 0:
            raise ConfigError("ping_period_s and ping_timeout_s must be positive")
        if self.ping_retries < 0:
            raise ConfigError(
                f"ping_retries must be non-negative, got {self.ping_retries}"
            )
        if not (1 <= self.ttl <= 32):
            raise ConfigError(f"ttl out of range [1, 32]: {self.ttl}")
        if self.seen_cache < 64:
            raise ConfigError(f"seen_cache must be >= 64, got {self.seen_cache}")

    @property
    def time_scale(self) -> float:
        """Protocol seconds elapsing per wall-clock second."""
        return 60.0 / self.minute_s


def live_grid_for(name: str) -> LiveSpec:
    """The swarm sizing for a named scale tier.

    Mirrors :func:`repro.experiments.spec.scale_for`: smoke fits CI,
    bench is the 200-node acceptance swarm, paper pushes to 500
    processes and slows the clock so per-process scheduling jitter
    stays small relative to the minute.
    """
    if name == "smoke":
        return LiveSpec(name="smoke", n_nodes=25, minute_s=0.5)
    if name == "bench":
        return LiveSpec(name="bench", n_nodes=200, minute_s=2.0, drain_timeout_s=20.0)
    if name == "paper":
        return LiveSpec(
            name="paper",
            n_nodes=500,
            minute_s=2.0,
            spawn_stagger_s=0.02,
            drain_timeout_s=30.0,
        )
    raise ConfigError(f"unknown live scale: {name!r}")
