"""UDP port allocation for localhost swarms.

Every multi-hundred-process localhost swarm eventually hits the same
two failure modes: a stale socket in ``TIME_WAIT``-adjacent limbo makes
a fixed port plan flaky (``EADDRINUSE``), and fully OS-assigned ports
make runs hard to reproduce or firewall. This module supports both
strategies:

* **ephemeral** (default): bind ``count`` sockets to port 0 at once,
  read the kernel-assigned ports back, release them. Holding all
  sockets until the full set is known minimizes reuse races between
  allocation and node start-up.
* **based**: scan upward from a base port, skipping busy ports. The
  base comes from the ``base`` argument or the ``$REPRO_LIVE_PORT_BASE``
  environment variable -- the deterministic override for CI and for
  debugging with tcpdump.

Node processes additionally use :func:`bind_udp_socket`, which retries
a specific port with bounded backoff before giving up -- the supervisor
hands each node its allocated port, and the retry absorbs the window
where a previous run's socket is still being torn down.
"""

from __future__ import annotations

import errno
import os
import socket
import time
from typing import Callable, List, Mapping, Optional

from repro.errors import ConfigError

#: Environment variable naming a deterministic base port.
ENV_PORT_BASE = "REPRO_LIVE_PORT_BASE"

#: Lowest base port we accept (below this lives privileged territory).
MIN_PORT = 1024
MAX_PORT = 65_535


def port_base_from_env(env: Optional[Mapping[str, str]] = None) -> Optional[int]:
    """The ``$REPRO_LIVE_PORT_BASE`` override, validated; None if unset."""
    env = os.environ if env is None else env
    text = env.get(ENV_PORT_BASE)
    if text is None or not text.strip():
        return None
    try:
        base = int(text)
    except ValueError:
        raise ConfigError(f"{ENV_PORT_BASE} is not an integer: {text!r}")
    if not (MIN_PORT <= base <= MAX_PORT):
        raise ConfigError(
            f"{ENV_PORT_BASE} out of range [{MIN_PORT}, {MAX_PORT}]: {base}"
        )
    return base


def _udp_socket() -> socket.socket:
    return socket.socket(socket.AF_INET, socket.SOCK_DGRAM)


def bind_udp_socket(
    host: str,
    port: int,
    *,
    retries: int = 5,
    backoff_s: float = 0.05,
    sleep: Callable[[float], None] = time.sleep,
) -> socket.socket:
    """Bind a UDP socket, retrying ``EADDRINUSE`` with doubling backoff.

    ``port=0`` asks the kernel for an ephemeral port (no retry needed).
    After ``retries`` failed attempts the final :class:`OSError` is
    wrapped in :class:`~repro.errors.ConfigError` naming the address.
    """
    if retries < 0:
        raise ConfigError(f"retries must be non-negative, got {retries}")
    if backoff_s <= 0:
        raise ConfigError(f"backoff_s must be positive, got {backoff_s}")
    attempt = 0
    while True:
        sock = _udp_socket()
        try:
            sock.bind((host, port))
            return sock
        except OSError as exc:
            sock.close()
            if exc.errno != errno.EADDRINUSE or attempt >= retries:
                raise ConfigError(
                    f"cannot bind UDP {host}:{port} "
                    f"after {attempt + 1} attempt(s): {exc}"
                ) from exc
            sleep(backoff_s * (2 ** attempt))
            attempt += 1


def allocate_udp_ports(
    count: int,
    *,
    host: str = "127.0.0.1",
    base: Optional[int] = None,
    env: Optional[Mapping[str, str]] = None,
    span: int = 8192,
) -> List[int]:
    """Allocate ``count`` distinct usable UDP ports on ``host``.

    With a base port (argument, else ``$REPRO_LIVE_PORT_BASE``), ports
    are the first ``count`` bindable ports scanning upward from the base
    within ``span`` candidates -- deterministic module busy neighbors.
    Without one, the kernel assigns ephemeral ports.
    """
    if count < 1:
        raise ConfigError(f"count must be >= 1, got {count}")
    if base is None:
        base = port_base_from_env(env)
    if base is not None and not (MIN_PORT <= base <= MAX_PORT):
        raise ConfigError(f"base port out of range [{MIN_PORT}, {MAX_PORT}]: {base}")

    ports: List[int] = []
    held: List[socket.socket] = []
    try:
        if base is None:
            for _ in range(count):
                sock = _udp_socket()
                sock.bind((host, 0))
                held.append(sock)
                ports.append(sock.getsockname()[1])
            return ports
        candidate = base
        end = min(MAX_PORT, base + span - 1)
        while len(ports) < count and candidate <= end:
            sock = _udp_socket()
            try:
                sock.bind((host, candidate))
            except OSError as exc:
                sock.close()
                if exc.errno not in (errno.EADDRINUSE, errno.EACCES):
                    raise ConfigError(
                        f"cannot probe UDP {host}:{candidate}: {exc}"
                    ) from exc
            else:
                held.append(sock)
                ports.append(candidate)
            candidate += 1
        if len(ports) < count:
            raise ConfigError(
                f"only {len(ports)} of {count} ports bindable in "
                f"[{base}, {end}] on {host}"
            )
        return ports
    finally:
        for sock in held:
            sock.close()
