"""Spawn and babysit a localhost swarm of live overlay nodes.

The supervisor is the testbed's control plane:

* generates the overlay topology with the same
  :func:`repro.overlay.topology.generate_topology` the DES backends use,
  picks the attack-agent subset deterministically from the seed, and
  allocates one UDP port per node (:mod:`repro.live.ports`);
* writes one JSON :class:`~repro.live.node.NodeConfig` per node and
  spawns ``python -m repro.live.node`` processes with a staggered start
  and a shared protocol-t=0 instant, so every node's minute windows
  align;
* babysits the swarm: crash detection while the scenario runs, then a
  graceful SIGTERM drain with a bounded timeout and a SIGKILL backstop.
  Reaping runs in a ``finally`` block, so a KeyboardInterrupt or any
  collection error still leaves zero orphaned processes and no bound
  sockets behind;
* collects the per-node JSONL stats (``live.minute`` records plus the
  engine's ``police.*`` events), schema-validates every record, and
  renders the swarm's aggregate into the repo's minute-table format
  with a verified manifest sidecar.

The supervisor is deliberately synchronous -- plain ``subprocess`` +
polling. The nodes are the asyncio programs; the babysitter must stay
simple enough to be obviously correct about process cleanup.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.config import DDPoliceConfig
from repro.errors import ConfigError
from repro.evidence import EvidenceConfig
from repro.live.ports import allocate_udp_ports
from repro.live.node import NodeConfig
from repro.obs.manifest import (
    atomic_write_text,
    build_manifest,
    jsonable_config,
    write_manifest,
)
from repro.obs.trace import iter_records, validate_record
from repro.overlay.topology import TopologyConfig, generate_topology
from repro.simkit.rng import derive_seed


@dataclass(frozen=True)
class SwarmConfig:
    """One swarm run: scenario shape + testbed pacing."""

    n_nodes: int
    minutes: int
    seed: int = 0
    minute_s: float = 1.0
    host: str = "127.0.0.1"
    port_base: Optional[int] = None
    #: Attack role.
    num_agents: int = 0
    attack_start_min: int = 0
    attack_rate_qpm: float = 0.0
    cheat_strategy: str = "honest"
    #: Workload + capacity (protocol rates, as in the DES).
    queries_per_minute: float = 0.3
    capacity_qpm: float = 10_000.0
    #: Defense layer.
    defense: str = "none"
    police: DDPoliceConfig = DDPoliceConfig()
    #: Topology (the DES agent-sweep default is the ba_m=1 tree).
    topology_model: str = "ba"
    ba_m: int = 1
    ttl: int = 7
    seen_cache: int = 50_000
    #: Evidence-store strategy for the nodes' dedup caches and the
    #: police engine's traffic windows (exact or sketch-backed).
    evidence: EvidenceConfig = EvidenceConfig()
    #: Liveness timing (protocol seconds).
    ping_period_s: float = 60.0
    ping_timeout_s: float = 15.0
    ping_retries: int = 3
    #: Babysitting (wall seconds).
    spawn_stagger_s: float = 0.01
    drain_timeout_s: float = 10.0
    run_id: str = "live"

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ConfigError(f"n_nodes must be >= 2, got {self.n_nodes}")
        if self.minutes < 1:
            raise ConfigError(f"minutes must be >= 1, got {self.minutes}")
        if not (0 <= self.num_agents < self.n_nodes):
            raise ConfigError(
                f"num_agents: cannot compromise {self.num_agents} of "
                f"{self.n_nodes} nodes"
            )
        if self.minute_s <= 0:
            raise ConfigError(f"minute_s must be positive, got {self.minute_s}")
        if self.drain_timeout_s <= 0:
            raise ConfigError("drain_timeout_s must be positive")
        if self.defense not in ("none", "ddpolice"):
            raise ConfigError(f"unknown defense: {self.defense!r}")


@dataclass
class SwarmResult:
    """Validated per-node stats plus babysitting facts."""

    config: SwarmConfig
    #: All schema-valid ``live.minute`` records across nodes.
    minute_records: List[Dict[str, Any]]
    #: All ``police.*`` records (suspect/report/cut) across nodes.
    police_records: List[Dict[str, Any]]
    agent_ids: Set[int]
    #: Nodes that died before the scenario ended (nonzero exit / signal).
    crashed: List[int]
    #: Nodes whose final record confirms a clean drain.
    clean_exits: int
    duration_s: float

    def cut_events(self) -> List[Dict[str, Any]]:
        return [r for r in self.police_records if r.get("kind") == "police.cut"]

    def minute_table(self) -> Tuple[List[str], List[List[Any]]]:
        """Swarm-aggregate per-minute table (the repo's minute format).

        Good-workload issue/success columns reclassify attack agents the
        way the DES origin-aware metrics do: an agent's queries count as
        good workload before the attack minute and are excluded from it
        onward (the flooder also keeps its normal workload running).
        """
        per_minute: Dict[int, Dict[str, float]] = {}
        attack_from = self.config.attack_start_min
        for rec in self.minute_records:
            minute = int(rec["minute"])
            agg = per_minute.setdefault(
                minute,
                {"issued": 0, "succeeded": 0, "response_sum_s": 0.0,
                 "messages": 0, "attack_sent": 0, "nodes": 0},
            )
            agg["nodes"] += 1
            agg["messages"] += rec["sent"]
            agg["attack_sent"] += rec["attack_sent"]
            excluded = (
                self.config.num_agents > 0
                and rec.get("agent")
                and minute > attack_from
            )
            if not excluded:
                agg["issued"] += rec["issued"]
                agg["succeeded"] += rec["succeeded"]
                agg["response_sum_s"] += rec["response_sum_s"]
        header = [
            "minute", "nodes", "issued", "succeeded", "success_rate",
            "response_s", "messages", "attack_sent",
        ]
        rows: List[List[Any]] = []
        for minute in sorted(per_minute):
            agg = per_minute[minute]
            issued = int(agg["issued"])
            succeeded = int(agg["succeeded"])
            rows.append([
                minute,
                int(agg["nodes"]),
                issued,
                succeeded,
                round(succeeded / issued, 3) if issued else 0.0,
                round(agg["response_sum_s"] / succeeded, 4) if succeeded else 0.0,
                int(agg["messages"]),
                int(agg["attack_sent"]),
            ])
        return header, rows


class Supervisor:
    """Spawns, watches, drains, and reaps one node swarm.

    Split into :meth:`start` / :meth:`wait` / :meth:`shutdown` so tests
    can interfere mid-run (kill a node, interrupt the wait) and still
    observe the cleanup contract; :meth:`run` is the one-call wrapper
    with the ``finally``-guaranteed reap.
    """

    def __init__(self, config: SwarmConfig, out_dir: Path) -> None:
        self.config = config
        self.out_dir = Path(out_dir)
        self.processes: Dict[int, subprocess.Popen] = {}
        self.ports: List[int] = []
        self.agent_ids: Set[int] = set()
        self.crashed: List[int] = []
        self._started_at = 0.0
        self._deadline = 0.0

    # ------------------------------------------------------------------
    def node_config(self, node_id: int) -> Path:
        return self.out_dir / f"node-{node_id:04d}.json"

    def node_stats(self, node_id: int) -> Path:
        return self.out_dir / f"node-{node_id:04d}.jsonl"

    def node_ready(self, node_id: int) -> Path:
        return self.out_dir / f"node-{node_id:04d}.ready"

    @property
    def start_file(self) -> Path:
        return self.out_dir / "start_at.json"

    def start(self) -> None:
        """Plan the swarm and spawn every node process, staggered."""
        if self.processes:
            raise ConfigError("swarm already started")
        cfg = self.config
        self.out_dir.mkdir(parents=True, exist_ok=True)
        # Scrub artifacts from any previous swarm in this directory:
        # JSONL sinks append, so stale per-node stats would silently
        # merge two runs' records at collect() time.
        for stale in self.out_dir.glob("node-*.json*"):
            stale.unlink()
        for stale in self.out_dir.glob("node-*.ready"):
            stale.unlink()
        self.start_file.unlink(missing_ok=True)

        topology = generate_topology(
            TopologyConfig(
                n=cfg.n_nodes, model=cfg.topology_model, ba_m=cfg.ba_m, seed=cfg.seed
            )
        )
        self.agent_ids = set(
            random.Random(derive_seed(cfg.seed, "agents")).sample(
                range(cfg.n_nodes), cfg.num_agents
            )
        )
        self.ports = allocate_udp_ports(
            cfg.n_nodes, host=cfg.host, base=cfg.port_base
        )
        addresses = {
            i: (cfg.host, self.ports[i]) for i in range(cfg.n_nodes)
        }
        police = {
            k: (v.value if hasattr(v, "value") else v)
            for k, v in jsonable_config(cfg.police).items()
        }

        for i in range(cfg.n_nodes):
            node = NodeConfig(
                node_id=i,
                host=cfg.host,
                port=self.ports[i],
                addresses=addresses,
                neighbors=tuple(sorted(topology.neighbors(i))),
                n_peers=cfg.n_nodes,
                minutes=cfg.minutes,
                minute_s=cfg.minute_s,
                seed=cfg.seed,
                ttl=cfg.ttl,
                seen_cache=cfg.seen_cache,
                evidence=dict(jsonable_config(cfg.evidence)),
                capacity_qpm=cfg.capacity_qpm,
                queries_per_minute=cfg.queries_per_minute,
                agent=i in self.agent_ids,
                attack_start_min=cfg.attack_start_min,
                attack_rate_qpm=cfg.attack_rate_qpm if i in self.agent_ids else 0.0,
                cheat_strategy=cfg.cheat_strategy if i in self.agent_ids else "honest",
                defense=cfg.defense,
                police=police,
                ping_period_s=cfg.ping_period_s,
                ping_timeout_s=cfg.ping_timeout_s,
                ping_retries=cfg.ping_retries,
                stats_path=str(self.node_stats(i)),
                run_id=cfg.run_id,
                ready_file=str(self.node_ready(i)),
                start_file=str(self.start_file),
            )
            atomic_write_text(
                self.node_config(i), json.dumps(node.to_dict(), sort_keys=True)
            )

        env = dict(os.environ)
        pkg_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            pkg_root if not existing else f"{pkg_root}{os.pathsep}{existing}"
        )
        self._started_at = time.time()
        for i in range(cfg.n_nodes):
            self.processes[i] = subprocess.Popen(
                [sys.executable, "-m", "repro.live.node",
                 "--config", str(self.node_config(i))],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            if cfg.spawn_stagger_s > 0:
                time.sleep(cfg.spawn_stagger_s)

        # Startup barrier: wait for every node's ready marker (bound
        # socket, imports done), then publish the shared protocol t=0.
        # Guessing interpreter start-up time does not survive contact
        # with a loaded machine; the barrier makes minute windows align
        # regardless of how slowly a few hundred interpreters come up.
        ready_deadline = time.time() + 60.0 + 0.2 * cfg.n_nodes
        while time.time() < ready_deadline:
            waiting = [
                i for i in range(cfg.n_nodes)
                if not self.node_ready(i).exists()
                and self.processes[i].poll() is None
            ]
            if not waiting:
                break
            time.sleep(0.02)
        start_at = time.time() + max(0.5, 0.002 * cfg.n_nodes)
        atomic_write_text(self.start_file, json.dumps({"start_at": start_at}))
        self._deadline = (
            start_at + cfg.minutes * cfg.minute_s + cfg.drain_timeout_s + 30.0
        )

    def wait(self, poll_s: float = 0.1) -> None:
        """Watch the swarm until every node exited or the deadline passed.

        A node exiting nonzero (or on a signal) before the scenario end
        is recorded in ``crashed`` -- the swarm keeps running; a live
        overlay must survive individual node deaths.
        """
        while time.time() < self._deadline:
            running = 0
            for node_id, proc in self.processes.items():
                code = proc.poll()
                if code is None:
                    running += 1
                elif code != 0 and node_id not in self.crashed:
                    self.crashed.append(node_id)
            if running == 0:
                return
            time.sleep(poll_s)

    def shutdown(self) -> None:
        """SIGTERM every survivor, drain, SIGKILL stragglers, reap all."""
        survivors = [p for p in self.processes.values() if p.poll() is None]
        for proc in survivors:
            try:
                proc.send_signal(signal.SIGTERM)
            except OSError:  # pragma: no cover - exited in between
                pass
        deadline = time.time() + self.config.drain_timeout_s
        for proc in survivors:
            remaining = deadline - time.time()
            try:
                proc.wait(timeout=max(0.05, remaining))
            except subprocess.TimeoutExpired:
                proc.kill()
        for proc in self.processes.values():
            if proc.poll() is None:  # pragma: no cover - kill() race
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    pass

    def collect(self) -> SwarmResult:
        """Schema-validate and aggregate every node's JSONL stats."""
        minute_records: List[Dict[str, Any]] = []
        police_records: List[Dict[str, Any]] = []
        clean = 0
        for i in range(self.config.n_nodes):
            path = self.node_stats(i)
            if not path.exists():
                continue
            for record in iter_records(path):
                validate_record(record)
                kind = record.get("kind", "")
                if kind == "live.minute":
                    minute_records.append(record)
                elif kind == "live.final":
                    clean += int(bool(record.get("clean")))
                elif kind.startswith("police."):
                    police_records.append(record)
        return SwarmResult(
            config=self.config,
            minute_records=minute_records,
            police_records=police_records,
            agent_ids=set(self.agent_ids),
            crashed=list(self.crashed),
            clean_exits=clean,
            duration_s=time.time() - self._started_at,
        )

    def run(self) -> SwarmResult:
        """Start, babysit, drain, reap, collect -- the one-call flow.

        The reap runs in ``finally``: KeyboardInterrupt, a crash in the
        watcher, or a collection error all still tear the swarm down.
        """
        try:
            self.start()
            self.wait()
        finally:
            self.shutdown()
        return self.collect()


def run_swarm(config: SwarmConfig, out_dir: Path) -> SwarmResult:
    """Run one swarm and write its minute table + manifest into ``out_dir``.

    The table lands at ``<out_dir>/swarm_minutes.txt`` with a
    ``.manifest.json`` sidecar that embeds the swarm config
    (:func:`repro.obs.manifest.verify_manifest`-clean).
    """
    from repro.experiments.reporting import render_table

    supervisor = Supervisor(config, out_dir)
    result = supervisor.run()
    header, rows = result.minute_table()
    table = render_table(
        header,
        rows,
        title=(
            f"live swarm: {config.n_nodes} nodes, {config.minutes} protocol "
            f"minutes at {config.minute_s:g}s/minute"
        ),
    )
    artifact = Path(out_dir) / "swarm_minutes.txt"
    atomic_write_text(artifact, table + "\n")
    manifest = build_manifest(
        kind="live-swarm",
        config=config,
        seed=config.seed,
        tasks=config.n_nodes,
        duration_s=result.duration_s,
        counters={
            "minute_records": len(result.minute_records),
            "police_records": len(result.police_records),
            "crashed": len(result.crashed),
            "clean_exits": result.clean_exits,
        },
    )
    write_manifest(artifact, manifest)
    return result
