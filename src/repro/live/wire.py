"""Datagram framing for the live UDP overlay.

One overlay message per UDP datagram: the 23-byte Gnutella header
(:class:`repro.core.wire.GnutellaHeader`) selects the payload codec.
:func:`decode_message` and :func:`encode_message` dispatch over *every*
payload descriptor -- the classic Gnutella vocabulary plus the two
DD-POLICE extensions -- so the node's receive loop is a single call.

Both directions keep the :mod:`repro.core.wire` contract: malformed
input raises only :class:`~repro.errors.WireFormatError` (a
:class:`~repro.errors.ProtocolError`), never a bare struct/Unicode
error.

One deliberate divergence from the DES objects: the in-memory
``NeighborListMessage.sent_at`` stamp is not on the wire (real servents
would carry a sequence number), so lists decoded here arrive with
``sent_at=None`` and the police engine's stale-list reorder guard is
inert on the testbed -- UDP on loopback essentially never reorders
across the 2-minute exchange period.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.wire import (
    decode_bye,
    decode_neighbor_list,
    decode_neighbor_traffic,
    decode_ping,
    decode_pong,
    decode_query,
    decode_query_hit,
    encode_bye,
    encode_neighbor_list,
    encode_neighbor_traffic,
    encode_ping,
    encode_pong,
    encode_query,
    encode_query_hit,
    GnutellaHeader,
)
from repro.errors import WireFormatError
from repro.overlay.message import Message, MessageKind

#: Largest UDP payload we will emit (IPv4 65,535 minus IP/UDP headers).
MAX_DATAGRAM = 65_507

_DECODERS: Dict[MessageKind, Callable[[bytes], Message]] = {
    MessageKind.PING: decode_ping,
    MessageKind.PONG: decode_pong,
    MessageKind.QUERY: decode_query,
    MessageKind.QUERY_HIT: decode_query_hit,
    MessageKind.BYE: decode_bye,
    MessageKind.NEIGHBOR_LIST: decode_neighbor_list,
    MessageKind.NEIGHBOR_TRAFFIC: decode_neighbor_traffic,
}

_ENCODERS: Dict[MessageKind, Callable[[Message], bytes]] = {
    MessageKind.PING: encode_ping,
    MessageKind.PONG: encode_pong,
    MessageKind.QUERY: encode_query,
    MessageKind.QUERY_HIT: encode_query_hit,
    MessageKind.BYE: encode_bye,
    MessageKind.NEIGHBOR_LIST: encode_neighbor_list,
    MessageKind.NEIGHBOR_TRAFFIC: encode_neighbor_traffic,
}


def decode_message(raw: bytes) -> Message:
    """Decode one datagram into its message object.

    The header's payload descriptor selects the codec; every defect --
    unknown descriptor, truncation, bad address bytes, bad UTF-8 --
    surfaces as :class:`~repro.errors.WireFormatError`.
    """
    if len(raw) > MAX_DATAGRAM:
        raise WireFormatError(f"datagram too large: {len(raw)} bytes")
    header = GnutellaHeader.decode(raw)
    return _DECODERS[header.kind](raw)


def encode_message(msg: Message) -> bytes:
    """Encode one message object into its datagram."""
    encoder = _ENCODERS.get(msg.kind)
    if encoder is None:
        raise WireFormatError(f"no wire codec for message kind {msg.kind}")
    raw = encoder(msg)
    if len(raw) > MAX_DATAGRAM:
        raise WireFormatError(
            f"encoded {msg.kind.name} exceeds the datagram limit: {len(raw)} bytes"
        )
    return raw
