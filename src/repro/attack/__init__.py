"""Overlay flooding-based DDoS attack model.

Implements the bad-peer behaviour of Sections 2.1-2.3:

* :class:`~repro.attack.agent.DDoSAgent` -- generates distinct bogus
  queries at ``Q_d = min(20,000, link capacity)`` per minute, optionally
  with different queries per neighbor (the "more damaging" Figure 1
  pattern), and otherwise behaves exactly like a good peer.
* :mod:`~repro.attack.cheating` -- the three Neighbor_Traffic reporting
  strategies of Section 3.4 (honest / inflate / deflate / silent).
* :class:`~repro.attack.scenario.AttackScenario` -- picks k random
  compromised peers and launches them at a configured time.
"""

from repro.attack.agent import AgentConfig, DDoSAgent
from repro.attack.cheating import CheatStrategy, apply_cheat
from repro.attack.scenario import AttackScenario, ScenarioConfig

__all__ = [
    "AgentConfig",
    "DDoSAgent",
    "CheatStrategy",
    "apply_cheat",
    "AttackScenario",
    "ScenarioConfig",
]
