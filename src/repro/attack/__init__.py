"""Overlay flooding-based DDoS attack model.

Implements the bad-peer behaviour of Sections 2.1-2.3:

* :class:`~repro.attack.agent.DDoSAgent` -- generates distinct bogus
  queries at ``Q_d = min(20,000, link capacity)`` per minute, optionally
  with different queries per neighbor (the "more damaging" Figure 1
  pattern), and otherwise behaves exactly like a good peer.
* :mod:`~repro.attack.cheating` -- the three Neighbor_Traffic reporting
  strategies of Section 3.4 (honest / inflate / deflate / silent).
* :class:`~repro.attack.scenario.AttackScenario` -- picks k random
  compromised peers and launches them at a configured time.
* :mod:`~repro.attack.adaptive` -- adversaries that fight the defense
  back: threshold-aware throttling, coordinated collusion, churn-assisted
  evasion, and exchange-phase-locked pulsing.
"""

from repro.attack.adaptive import (
    ADAPTIVE_STRATEGIES,
    AdaptiveAgent,
    AdaptiveConfig,
    CollusionRing,
)
from repro.attack.agent import AgentConfig, DDoSAgent
from repro.attack.cheating import CheatStrategy, apply_cheat
from repro.attack.scenario import AttackScenario, ScenarioConfig

__all__ = [
    "ADAPTIVE_STRATEGIES",
    "AdaptiveAgent",
    "AdaptiveConfig",
    "CollusionRing",
    "AgentConfig",
    "DDoSAgent",
    "CheatStrategy",
    "apply_cheat",
    "AttackScenario",
    "ScenarioConfig",
]
