"""DDoS agent: the compromised-peer behaviour model.

Section 2.2: "a bad peer ... will do everything else as a good peer except
that it generates and issues a large number of queries during every time
unit." Section 3.5 fixes the rate law: ``Q_d = min(20,000, link
capacity)`` queries per minute.

The agent batches its issue events (default once per second) to keep the
event count tractable; each batch sends ``rate/batches_per_min`` distinct
bogus queries. With ``per_neighbor=True`` (default) every neighbor gets a
*different* query -- the Figure 1 pattern that maximizes damage and makes
naive rate-based blocking dangerous.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

import itertools
from typing import TYPE_CHECKING, Iterator

from repro.attack.cheating import CheatStrategy
from repro.errors import ConfigError
from repro.overlay.ids import PeerId
from repro.overlay.network import OverlayNetwork
from repro.simkit.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.workload.trace import QueryTraceReader


@dataclass(frozen=True)
class AgentConfig:
    """Attack-agent parameters."""

    nominal_rate_qpm: float = 20_000.0
    link_capacity_qpm: float = float("inf")
    per_neighbor: bool = True
    batch_interval_s: float = 1.0
    cheat_strategy: CheatStrategy = CheatStrategy.SILENT
    ttl: Optional[int] = None

    def __post_init__(self) -> None:
        if self.nominal_rate_qpm <= 0:
            raise ConfigError("nominal_rate_qpm must be positive")
        if self.link_capacity_qpm <= 0:
            raise ConfigError("link_capacity_qpm must be positive")
        if self.batch_interval_s <= 0:
            raise ConfigError("batch_interval_s must be positive")

    @property
    def effective_rate_qpm(self) -> float:
        """The paper's rate law: Q_d = min(nominal, link capacity)."""
        return min(self.nominal_rate_qpm, self.link_capacity_qpm)


class DDoSAgent:
    """Drives one compromised peer.

    The agent issues *distinct* queries (unique nonce keyword per query) so
    GUID/duplicate suppression never collapses its traffic, exactly like
    the LimeWire-replay prototype of Section 2.3.
    """

    def __init__(
        self,
        sim: Simulator,
        network: OverlayNetwork,
        peer_id: PeerId,
        config: AgentConfig = AgentConfig(),
        *,
        rng: Optional[random.Random] = None,
        trace: Optional["QueryTraceReader"] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.peer_id = peer_id
        self.config = config
        self._rng = rng or random.Random(peer_id.value)
        self._active = False
        self._carry = 0.0  # fractional queries carried between batches
        self._nonce = 0
        self.queries_sent = 0
        # Section 2.3: "The querying thread reads queries from the log
        # file collected by the monitoring node and issues these
        # queries." Cycled forever, like the prototype's replay loop.
        self._trace_iter: Optional[Iterator] = None
        if trace is not None:
            self._trace_iter = itertools.cycle(trace.read_all())

    @property
    def active(self) -> bool:
        return self._active

    def start(self) -> None:
        """Begin attacking now.

        Registration with the network's attack-origin set happens here,
        not at construction: queries the peer issued *before* compromise
        keep their GOOD class in the metrics pipeline, so pre-attack
        minutes of an attacked run match the clean baseline exactly.
        """
        if self._active:
            return
        self._active = True
        self.network.register_attack_origin(self.peer_id)
        self.sim.schedule_in(0.0, self._batch)

    def stop(self) -> None:
        """Cease attacking and drop the attack-origin registration.

        Each query's class is recorded at issue time, so everything the
        agent already sent stays classified as attack traffic; but a
        stopped agent's peer that later rejoins (e.g. under churn) issues
        *good* queries again, and a stale registration would misclassify
        them. ``start`` re-registers, so stop/start cycles stay correct.
        """
        if not self._active:
            return
        self._active = False
        self.network.unregister_attack_origin(self.peer_id)

    def _bogus_keywords(self) -> Tuple[str, ...]:
        self._nonce += 1
        if self._trace_iter is not None:
            record = next(self._trace_iter)
            # replayed queries keep their captured search strings; every
            # message still gets a fresh GUID, so dedup never collapses
            # them (same as the LimeWire prototype)
            return tuple(record.search_string.split())
        return ("bogus", f"x{self.peer_id.value}n{self._nonce}")

    def _batch_rate_qpm(self, n_neighbors: int) -> float:
        """Issue rate for the current batch (queries/minute).

        Subclasses override this single hook to shape the flood
        (throttling, pulsing) without touching the carry arithmetic --
        the base behaviour stays the paper's constant-max-rate law.
        """
        return self.config.effective_rate_qpm

    def _batch(self) -> None:
        if not self._active:
            return
        peer = self.network.peers[self.peer_id]
        if peer.online and peer.neighbors:
            rate_qpm = self._batch_rate_qpm(len(peer.neighbors))
            per_batch = (
                rate_qpm
                * self.config.batch_interval_s
                / 60.0
                + self._carry
            )
            count = int(per_batch)
            self._carry = per_batch - count
            neighbors = sorted(peer.neighbors, key=lambda p: p.value)
            for i in range(count):
                if self.config.per_neighbor:
                    nb = neighbors[i % len(neighbors)]
                    peer.originate_query_to(nb, self._bogus_keywords(), ttl=self.config.ttl)
                else:
                    peer.issue_query(self._bogus_keywords(), ttl=self.config.ttl)
                self.queries_sent += 1
        self.sim.schedule_in(self.config.batch_interval_s, self._batch)
