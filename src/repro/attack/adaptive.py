"""Adaptive adversaries: attackers that fight the defense back.

The paper evaluates DD-POLICE only against *static* flooders -- constant
maximum-rate agents that at most distort their own Neighbor_Traffic
reports (Section 3.4). This module models four ways a real botnet adapts
once the defense's mechanics are public, each selectable through
:class:`AdaptiveConfig` and swept by the ``robustness-matrix`` spec:

``throttle``
    Threshold-aware rate limiting: the agent knows (or estimates) the
    warning threshold that opens investigations and keeps every
    neighbor's per-minute share just under it. The flood shrinks, but
    monitoring never fires and the agent is never investigated.

``collude``
    Coordinated lying: compromised peers corroborate each other. In
    neighbor-list exchanges each colluder claims every other colluder as
    a neighbor -- a *consistent* lie that passes the pairwise
    cross-check -- and in Neighbor_Traffic reports a colluder excuses a
    fellow suspect with a fabricated "I sent it that flood" count (see
    :func:`repro.attack.cheating.apply_cheat`). Honest witnesses get
    outvoted inside the buddy group's indicator sums.

``churn``
    Churn-assisted evasion: attack for a while, voluntarily leave before
    strikes/evidence accumulate, rejoin through the host cache with a
    fresh neighbor set, repeat. Leaving wipes the per-pair consistency
    strikes and any open investigation about the agent.

``pulse``
    On/off duty-cycling phase-locked to the defense's exchange period:
    full-rate bursts during the on-phase, silence in the off-phase. The
    per-minute counters investigations judge on straddle the bursts, so
    detection latency stretches with the duty cycle.

``static`` (the default) reproduces the paper's attacker exactly --
:class:`repro.attack.scenario.AttackScenario` builds plain
:class:`~repro.attack.agent.DDoSAgent` instances on that path, keeping
every existing figure byte-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, FrozenSet, Optional, Tuple

from repro.attack.agent import AgentConfig, DDoSAgent
from repro.errors import ConfigError
from repro.overlay.ids import PeerId
from repro.overlay.network import OverlayNetwork
from repro.simkit.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.churn.process import ChurnProcess
    from repro.workload.trace import QueryTraceReader

#: Valid values of :attr:`AdaptiveConfig.strategy`.
ADAPTIVE_STRATEGIES: Tuple[str, ...] = (
    "static",
    "throttle",
    "collude",
    "churn",
    "pulse",
)


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs of the adaptive-adversary strategies.

    Every field is overridable through the spec layer as
    ``adversary.<field>`` (e.g. ``--set adversary.pulse_duty=0.25``);
    see ``docs/ADVERSARIES.md`` for the full knob table.
    """

    strategy: str = "static"
    #: throttle: fraction of the (estimated) warning threshold to sit at.
    throttle_margin: float = 0.9
    #: throttle: the attacker's estimate of the defense's per-neighbor
    #: warning threshold (DD-POLICE's default is 500 qpm).
    warning_threshold_qpm: float = 500.0
    #: pulse: burst period in seconds; phase-locked to the defense's
    #: neighbor-list exchange period (the paper's 2 minutes) by default.
    pulse_period_s: float = 120.0
    #: pulse: fraction of each period spent flooding at full rate.
    pulse_duty: float = 0.5
    #: pulse: offset of the burst start within the period.
    pulse_phase_s: float = 0.0
    #: churn: seconds of attacking before the agent flees.
    evade_on_s: float = 90.0
    #: churn: seconds spent offline before rejoining with fresh neighbors.
    evade_off_s: float = 30.0
    #: collude: fabricated "I sent the suspect this many queries last
    #: minute" count each colluder reports to excuse a fellow colluder.
    collude_excuse_qpm: float = 2000.0

    def __post_init__(self) -> None:
        if self.strategy not in ADAPTIVE_STRATEGIES:
            valid = ", ".join(ADAPTIVE_STRATEGIES)
            raise ConfigError(
                f"unknown strategy {self.strategy!r} (valid: {valid})"
            )
        if not (0.0 < self.throttle_margin <= 1.0):
            raise ConfigError("throttle_margin must be in (0, 1]")
        if self.warning_threshold_qpm <= 0:
            raise ConfigError("warning_threshold_qpm must be positive")
        if self.pulse_period_s <= 0:
            raise ConfigError("pulse_period_s must be positive")
        if not (0.0 < self.pulse_duty <= 1.0):
            raise ConfigError("pulse_duty must be in (0, 1]")
        if self.pulse_phase_s < 0:
            raise ConfigError("pulse_phase_s must be non-negative")
        if self.evade_on_s <= 0:
            raise ConfigError("evade_on_s must be positive")
        if self.evade_off_s <= 0:
            raise ConfigError("evade_off_s must be positive")
        if self.collude_excuse_qpm < 0:
            raise ConfigError("collude_excuse_qpm must be non-negative")


@dataclass(frozen=True)
class CollusionRing:
    """The shared lie of a colluding agent set.

    Handed to the DD-POLICE engines of compromised peers so that (a)
    their neighbor-list broadcasts claim every ring member -- the
    *consistent* fabrication that survives pairwise cross-checking --
    and (b) their Neighbor_Traffic answers about a fellow member carry
    the fabricated excuse count.
    """

    members: FrozenSet[PeerId]
    excuse_qpm: float = 2000.0

    def __post_init__(self) -> None:
        if self.excuse_qpm < 0:
            raise ConfigError("excuse_qpm must be non-negative")


def pulse_is_on(now: float, config: AdaptiveConfig) -> bool:
    """True iff a pulse attacker is in its burst phase at time ``now``."""
    phase = (now - config.pulse_phase_s) % config.pulse_period_s
    return phase < config.pulse_duty * config.pulse_period_s


class AdaptiveAgent(DDoSAgent):
    """A :class:`DDoSAgent` that shapes its flood against the defense.

    Rate shaping (throttle/pulse) happens in :meth:`_batch_rate_qpm`, so
    the carry arithmetic and the per-neighbor round-robin stay exactly
    the base agent's. Churn-assisted evasion drives a
    :class:`~repro.churn.process.ChurnProcess` -- the same leave/rejoin
    path natural churn uses, so neighbors observe a normal close and the
    host cache hands out fresh neighbors on return. Collusion needs no
    agent-side behaviour: the lies live in the compromised peers'
    DD-POLICE engines (see :class:`CollusionRing`).
    """

    def __init__(
        self,
        sim: Simulator,
        network: OverlayNetwork,
        peer_id: PeerId,
        config: AgentConfig = AgentConfig(),
        adaptive: AdaptiveConfig = AdaptiveConfig(),
        *,
        churn: Optional["ChurnProcess"] = None,
        rng: Optional[random.Random] = None,
        trace: Optional["QueryTraceReader"] = None,
    ) -> None:
        super().__init__(sim, network, peer_id, config, rng=rng, trace=trace)
        if adaptive.strategy == "churn" and churn is None:
            raise ConfigError(
                "churn-assisted evasion needs a ChurnProcess to drive"
            )
        self.adaptive = adaptive
        self._churn = churn
        self._flee_armed = False
        #: Completed voluntary leave cycles (diagnostics).
        self.evasions = 0

    # -- rate shaping ---------------------------------------------------
    def _batch_rate_qpm(self, n_neighbors: int) -> float:
        if self.adaptive.strategy == "throttle":
            # Keep each neighbor's per-minute share under its warning
            # threshold: the flood is bounded by margin * threshold per
            # neighbor, or the nominal rate if that is lower.
            ceiling = (
                self.adaptive.throttle_margin
                * self.adaptive.warning_threshold_qpm
                * max(1, n_neighbors)
            )
            return min(self.config.effective_rate_qpm, ceiling)
        if self.adaptive.strategy == "pulse":
            if not pulse_is_on(self.sim.now, self.adaptive):
                return 0.0
            return self.config.effective_rate_qpm
        return self.config.effective_rate_qpm

    def _batch(self) -> None:
        if self.adaptive.strategy == "pulse" and not pulse_is_on(
            self.sim.now, self.adaptive
        ):
            # A fractional carry must not leak across the silent phase:
            # the burst restarts from zero, like a fresh attack.
            self._carry = 0.0
        super()._batch()

    # -- churn-assisted evasion ----------------------------------------
    def start(self) -> None:
        was_active = self._active
        super().start()
        if (
            not was_active
            and self._active
            and self.adaptive.strategy == "churn"
            and not self._flee_armed
        ):
            self._flee_armed = True
            self.sim.schedule_in(self.adaptive.evade_on_s, self._flee)

    def _flee(self) -> None:
        if not self._active:
            self._flee_armed = False
            return
        peer = self.network.peers[self.peer_id]
        if peer.online and self._churn is not None:
            self._churn.depart(
                self.peer_id, rejoin_after_s=self.adaptive.evade_off_s
            )
            self.evasions += 1
        # The next flee lands one on-window after the scheduled rejoin;
        # _batch keeps rescheduling itself while offline and resumes the
        # flood the moment the peer is back with fresh neighbors.
        self.sim.schedule_in(
            self.adaptive.evade_off_s + self.adaptive.evade_on_s, self._flee
        )
