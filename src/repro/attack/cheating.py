"""Attacker reporting strategies for Neighbor_Traffic messages.

Section 3.4 analyzes the choices a bad peer j has when a buddy group it
belongs to (e.g. BG1-m) asks for traffic reports:

1. **not to cheat** -- report true counts; the group exonerates the good
   forwarder m and convicts j in BG1-j anyway;
2. **cheat high** (inflate) -- report more than it really sent to m; only
   strengthens m's innocence ("not a meaningful cheating");
3. **cheat low** (deflate) -- report less; may get the good forwarder m
   wrongly disconnected, but that isolates j's own attack traffic;
4. **refuse to report** (silent) -- treated as reporting 0, i.e. the same
   as case 2's outcome: "if a peer has not received a Neighbor_Traffic
   message from peer j within a predefined time period, it just assumes
   that peer j sent 0 query to peer m."

Beyond the paper's four single-agent choices, :data:`CheatStrategy.COLLUDE`
models a *coordinated* ring: when the suspect is a fellow colluder, the
reporter fabricates a large ``outgoing`` count ("I sent j that flood --
j merely forwarded it") and a zero ``incoming`` count (hiding the flood
j sent it). The fabricated Q_mj enters both indicators on the excusing
side: it grows ``(k-1) * received_by_j`` in the General indicator and the
``sum of Q_mj`` subtrahend in the Single indicator, dragging both under
the cut threshold. About non-colluders the reporter answers honestly to
blend in. See :class:`repro.attack.adaptive.CollusionRing` for the
neighbor-list half of the lie (consistent fabricated claims).
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

from repro.errors import ConfigError


class CheatStrategy(enum.Enum):
    """How a compromised peer answers Neighbor_Traffic requests."""

    HONEST = "honest"
    INFLATE = "inflate"
    DEFLATE = "deflate"
    SILENT = "silent"
    COLLUDE = "collude"


def apply_cheat(
    strategy: CheatStrategy,
    true_outgoing: int,
    true_incoming: int,
    *,
    inflate_factor: float = 10.0,
    deflate_factor: float = 0.01,
    suspect_is_colluder: bool = False,
    collude_excuse_qpm: float = 500.0,
) -> Optional[Tuple[int, int]]:
    """Transform true per-minute counts according to the strategy.

    Returns ``(reported_outgoing, reported_incoming)`` or ``None`` when the
    peer refuses to report (SILENT). The receiving side maps ``None`` to
    ``(0, 0)`` per the protocol rule quoted above.

    COLLUDE is corroboration, not self-defense: only when the report is
    *about a fellow colluder* (``suspect_is_colluder``) does the reporter
    fabricate ``(collude_excuse_qpm, 0)`` -- the "I sent j everything it
    emitted, it sent me nothing" alibi. Everywhere else a colluder
    reports honestly, so it never trips the inflate/deflate analysis of
    Section 3.4 on its own account.
    """
    if true_outgoing < 0 or true_incoming < 0:
        raise ConfigError("query counts must be non-negative")
    if strategy is CheatStrategy.SILENT:
        return None
    if strategy is CheatStrategy.HONEST:
        return (true_outgoing, true_incoming)
    if strategy is CheatStrategy.INFLATE:
        return (int(true_outgoing * inflate_factor), true_incoming)
    if strategy is CheatStrategy.DEFLATE:
        return (int(true_outgoing * deflate_factor), true_incoming)
    if strategy is CheatStrategy.COLLUDE:
        if collude_excuse_qpm < 0:
            raise ConfigError("collude_excuse_qpm must be non-negative")
        if suspect_is_colluder:
            return (int(collude_excuse_qpm), 0)
        return (true_outgoing, true_incoming)
    raise ConfigError(f"unknown strategy {strategy!r}")  # pragma: no cover
