"""Attack scenario: selecting and launching compromised peers.

Section 3.6: "In each of the simulations, k random peers, where k is
ranging from 10 to 200, are selected as DDoS compromised peers and each of
them keeps sending out attack queries at the maximum rate they are capable
of."
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Set

from repro.attack.adaptive import AdaptiveAgent, AdaptiveConfig
from repro.attack.agent import AgentConfig, DDoSAgent
from repro.attack.cheating import CheatStrategy
from repro.errors import ConfigError
from repro.overlay.bandwidth import BandwidthClass, BandwidthModel
from repro.overlay.ids import PeerId
from repro.overlay.network import OverlayNetwork
from repro.simkit.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.churn.process import ChurnProcess


@dataclass(frozen=True)
class ScenarioConfig:
    """Attack-scenario parameters."""

    num_agents: int = 10
    start_time_s: float = 0.0
    nominal_rate_qpm: float = 20_000.0
    per_neighbor: bool = True
    cheat_strategy: CheatStrategy = CheatStrategy.SILENT
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_agents < 0:
            raise ConfigError("num_agents must be non-negative")
        if self.start_time_s < 0:
            raise ConfigError("start_time_s must be non-negative")
        if self.nominal_rate_qpm <= 0:
            raise ConfigError("nominal_rate_qpm must be positive")


class AttackScenario:
    """Selects k random compromised peers and arms their agents."""

    def __init__(
        self,
        sim: Simulator,
        network: OverlayNetwork,
        config: ScenarioConfig,
        *,
        bandwidth_model: Optional[BandwidthModel] = None,
        bandwidth_classes: Optional[Dict[int, BandwidthClass]] = None,
        rng: Optional[random.Random] = None,
        adaptive: Optional[AdaptiveConfig] = None,
        churn: Optional["ChurnProcess"] = None,
    ) -> None:
        if config.num_agents > len(network.peers):
            raise ConfigError(
                f"num_agents: cannot compromise {config.num_agents} of "
                f"{len(network.peers)} peers (k must not exceed n)"
            )
        self.sim = sim
        self.network = network
        self.config = config
        self.adaptive = adaptive or AdaptiveConfig()
        self._rng = rng or random.Random(config.seed)
        self.agents: Dict[PeerId, DDoSAgent] = {}

        all_ids = sorted(network.peers.keys(), key=lambda p: p.value)
        chosen = self._rng.sample(all_ids, config.num_agents)
        for pid in chosen:
            link_cap = float("inf")
            if bandwidth_classes and pid.value in bandwidth_classes:
                cls = bandwidth_classes[pid.value]
                bw = bandwidth_model or BandwidthModel()
                link_cap = bw.upstream_qpm(cls)
            agent_cfg = AgentConfig(
                nominal_rate_qpm=config.nominal_rate_qpm,
                link_capacity_qpm=link_cap,
                per_neighbor=config.per_neighbor,
                cheat_strategy=config.cheat_strategy,
            )
            # One getrandbits draw per agent on *both* paths: the static
            # strategy consumes the exact rng sequence it always did, so
            # every pre-adaptive figure table stays byte-identical.
            agent_rng = random.Random(self._rng.getrandbits(32))
            if self.adaptive.strategy == "static":
                self.agents[pid] = DDoSAgent(
                    sim, network, pid, agent_cfg, rng=agent_rng
                )
            else:
                self.agents[pid] = AdaptiveAgent(
                    sim,
                    network,
                    pid,
                    agent_cfg,
                    self.adaptive,
                    churn=churn,
                    rng=agent_rng,
                )

    @property
    def compromised(self) -> Set[PeerId]:
        return set(self.agents.keys())

    def launch(self) -> None:
        """Schedule every agent to start at ``start_time_s``."""
        for agent in self.agents.values():
            if self.config.start_time_s <= self.sim.now:
                agent.start()
            else:
                self.sim.schedule_at(self.config.start_time_s, agent.start)

    def stop_all(self) -> None:
        for agent in self.agents.values():
            agent.stop()

    def total_attack_queries(self) -> int:
        return sum(a.queries_sent for a in self.agents.values())
