"""Definitions 2.1-2.3: the General and Single indicators.

Notation (Section 2.2): ``Q_ih(t)`` is the number of queries sent
(issued + forwarded) from peer i to peer h during minute t. Peer j has k
neighbors m1..mk; q is the good-peer issue threshold (10 queries/min).

Definition 2.1 (General Indicator)::

    g(j,t) = (1 / (q*k)) * ( sum_m Q_jm(t)  -  (k-1) * sum_m Q_mj(t) )

Definition 2.2 (Single Indicator, measured by neighbor i)::

    s(j,t,i) = (1/q) * ( Q_ji(t) - sum_{m != i} Q_mj(t) )

Definition 2.3: j is a *bad peer* iff ``g(j,t) > 1`` or ``s(j,t,i) > 1``
for any neighbor i; in deployment the decision threshold is the cut
threshold CT > 1 (Section 3.3).

Sanity anchor (Figure 2): if j issues q0 queries/min and faithfully
forwards everything, both indicators evaluate to exactly ``q0 / q``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class NeighborReport:
    """One buddy-group member's Neighbor_Traffic numbers about suspect j.

    Fields follow Table 1 from the *reporting member m's* perspective:

    * ``outgoing``: queries m sent to j in the past minute  (= Q_mj)
    * ``incoming``: queries m received from j in the past minute (= Q_jm)
    """

    member: int
    outgoing: int
    incoming: int

    def __post_init__(self) -> None:
        if self.outgoing < 0 or self.incoming < 0:
            raise ConfigError("report counts must be non-negative")


def general_indicator(
    sent_by_j: Sequence[float],
    received_by_j: Sequence[float],
    q: float,
) -> float:
    """Definition 2.1.

    Parameters
    ----------
    sent_by_j:
        ``[Q_jm(t) for m in neighbors]`` -- what j sent to each neighbor
        (each member m observes this as its In_query(j)).
    received_by_j:
        ``[Q_mj(t) for m in neighbors]`` -- what each neighbor sent to j.
    q:
        Good-peer issue threshold (queries/min).
    """
    if q <= 0:
        raise ConfigError(f"q must be positive, got {q}")
    if len(sent_by_j) != len(received_by_j):
        raise ConfigError(
            f"mismatched report lengths: {len(sent_by_j)} vs {len(received_by_j)}"
        )
    k = len(sent_by_j)
    if k == 0:
        raise ConfigError("general indicator needs at least one neighbor")
    total_out = float(sum(sent_by_j))
    total_in = float(sum(received_by_j))
    return (total_out - (k - 1) * total_in) / (q * k)


def single_indicator(
    q_ji: float,
    received_by_j_from_others: Iterable[float],
    q: float,
) -> float:
    """Definition 2.2: s(j,t,i) from the viewpoint of neighbor i.

    Parameters
    ----------
    q_ji:
        Queries j sent to i in minute t (i's own In_query(j)).
    received_by_j_from_others:
        ``[Q_mj(t) for m in neighbors, m != i]``.
    q:
        Good-peer issue threshold.
    """
    if q <= 0:
        raise ConfigError(f"q must be positive, got {q}")
    if q_ji < 0:
        raise ConfigError(f"q_ji must be non-negative, got {q_ji}")
    return (float(q_ji) - float(sum(received_by_j_from_others))) / q


def indicators_from_reports(
    observer: int,
    own_out_to_j: int,
    own_in_from_j: int,
    reports: Mapping[int, Optional[NeighborReport]],
    q: float,
) -> Tuple[float, float]:
    """Compute (g, s) at ``observer`` for suspect j from buddy reports.

    ``reports`` maps every *other* BG1-j member id to its report, or None
    when the member never answered within the collection window -- treated
    as (0, 0) per Section 3.4: "it just assumes that peer j sent 0 query".

    Returns ``(g(j,t), s(j,t,observer))``.
    """
    sent_by_j = [float(own_in_from_j)]
    received_by_j = [float(own_out_to_j)]
    others_into_j = []
    for member, rep in sorted(reports.items()):
        if member == observer:
            raise ConfigError("observer must not appear in reports")
        if rep is None:
            out_m, in_m = 0.0, 0.0
        else:
            out_m, in_m = float(rep.outgoing), float(rep.incoming)
        sent_by_j.append(in_m)
        received_by_j.append(out_m)
        others_into_j.append(out_m)
    g = general_indicator(sent_by_j, received_by_j, q)
    s = single_indicator(own_in_from_j, others_into_j, q)
    return g, s


def is_bad_peer(g: float, s_values: Iterable[float], threshold: float = 1.0) -> bool:
    """Definition 2.3 with an explicit threshold (CT in deployment).

    j is bad iff g exceeds the threshold or *any* single indicator does.
    """
    if threshold <= 0:
        raise ConfigError(f"threshold must be positive, got {threshold}")
    if g > threshold:
        return True
    return any(s > threshold for s in s_values)
