"""DD-POLICE configuration.

All protocol constants from Sections 2.2 and 3, reconstructed where the
source text dropped digits (see DESIGN.md section 0):

* ``q`` = 100 queries/min -- the good-peer issue threshold of Definition
  2.1 ("a good peer does not issue more than 100 queries per minute",
  with margin over their own measured per-peer maximum of ~40/min and
  the "one query every second" human bound).
* warning threshold = 500 queries/min -- "if peer j sends more than 500
  queries to peer A in the past minute, A will mark peer j as a
  suspicious peer" (Section 3.3 example).
* cut threshold CT = 5 -- "Comprehensively considering the performance of
  DD-POLICE, we choose CT = 5" (Section 3.7.2); sweeps use 3..10.
* neighbor-list exchange every 2 minutes (Section 3.7.1).
* Neighbor_Traffic send dedup + collection window = 5 seconds
  (Section 3.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.evidence.config import EvidenceConfig


class ExchangePolicy(enum.Enum):
    """Neighbor-list exchange policies compared in Section 3.7.1."""

    PERIODIC = "periodic"
    EVENT_DRIVEN = "event_driven"


@dataclass(frozen=True)
class DDPoliceConfig:
    """All DD-POLICE tunables."""

    #: Good-peer issue threshold q (queries/min), Definition 2.1.
    q_threshold_qpm: float = 100.0
    #: Per-minute incoming rate that marks a neighbor suspicious.
    warning_threshold_qpm: float = 500.0
    #: Cut threshold CT applied to g(j,t) and s(j,t,i).
    cut_threshold: float = 5.0
    #: Buddy-group radius r (DD-POLICE-r); the paper evaluates r=1.
    radius: int = 1
    #: Neighbor-list exchange policy and period.
    exchange_policy: ExchangePolicy = ExchangePolicy.PERIODIC
    exchange_period_s: float = 120.0
    #: Dedup window: don't re-send Neighbor_Traffic for the same suspect
    #: within this many seconds.
    report_dedup_window_s: float = 5.0
    #: How long to wait for buddy reports before deciding with what we have
    #: ("or waiting for another 5 seconds").
    collection_window_s: float = 5.0
    #: Missing report => assume the member sent 0 queries to the suspect.
    assume_zero_on_missing: bool = True
    #: How many inconsistency warnings before disconnecting a liar.
    inconsistency_tolerance: int = 3
    #: BG liveness ping period (Section 3.1 "ping members ... periodically").
    liveness_ping_period_s: float = 60.0

    # -- robustness extensions (all off by default: paper-literal) -------
    #: Re-request missing Neighbor_Traffic reports up to this many times
    #: per investigation (0 = paper-literal: silence becomes assumed 0).
    report_retry_limit: int = 0
    #: First re-request fires this long after the investigation opens;
    #: later ones back off exponentially (x2 per attempt).
    report_retry_backoff_s: float = 1.0
    #: Conclude only once at least this fraction of expected BG reports
    #: arrived (0.0 = paper-literal: conclude on whatever is present).
    report_quorum: float = 0.0
    #: With an unmet quorum, extend the collection window this many times
    #: before abstaining (suspect cleared, indicators NaN).
    quorum_extension_limit: int = 1
    #: Retransmit a neighbor-list exchange up to this many times if the
    #: neighbor stays silent (0 = paper-literal: fire and forget).
    exchange_retransmit_limit: int = 0
    #: Silence window before a neighbor-list retransmission.
    exchange_retransmit_timeout_s: float = 10.0

    # -- evidence representation (exact by default; docs/SKETCH.md) ------
    #: How the engine stores its evidence: the per-neighbor traffic
    #: monitor and the report-dedup window ("exact" reproduces the
    #: pre-sketch code byte for byte; "sketch" bounds memory with
    #: count-min counters and rotating Bloom filters).  Validated by
    #: :class:`repro.evidence.config.EvidenceConfig`; reachable as
    #: ``police.evidence.*`` dotted paths from the spec layer.
    evidence: EvidenceConfig = EvidenceConfig()

    def __post_init__(self) -> None:
        if self.q_threshold_qpm <= 0:
            raise ConfigError("q_threshold_qpm must be positive")
        if self.warning_threshold_qpm <= 0:
            raise ConfigError("warning_threshold_qpm must be positive")
        if self.cut_threshold <= 0:
            raise ConfigError("cut_threshold must be positive")
        if self.radius < 1:
            raise ConfigError(f"radius must be >= 1, got {self.radius}")
        if self.exchange_period_s <= 0:
            raise ConfigError("exchange_period_s must be positive")
        if self.report_dedup_window_s < 0:
            raise ConfigError("report_dedup_window_s must be non-negative")
        if self.collection_window_s <= 0:
            raise ConfigError("collection_window_s must be positive")
        if self.inconsistency_tolerance < 1:
            raise ConfigError("inconsistency_tolerance must be >= 1")
        if self.liveness_ping_period_s <= 0:
            raise ConfigError("liveness_ping_period_s must be positive")
        if self.report_retry_limit < 0:
            raise ConfigError(
                f"report_retry_limit must be non-negative, got {self.report_retry_limit}"
            )
        if self.report_retry_backoff_s <= 0:
            raise ConfigError(
                f"report_retry_backoff_s must be positive, "
                f"got {self.report_retry_backoff_s}"
            )
        if not (0.0 <= self.report_quorum <= 1.0):
            raise ConfigError(
                f"report_quorum must be in [0, 1], got {self.report_quorum}"
            )
        if self.quorum_extension_limit < 0:
            raise ConfigError(
                f"quorum_extension_limit must be non-negative, "
                f"got {self.quorum_extension_limit}"
            )
        if self.exchange_retransmit_limit < 0:
            raise ConfigError(
                f"exchange_retransmit_limit must be non-negative, "
                f"got {self.exchange_retransmit_limit}"
            )
        if self.exchange_retransmit_timeout_s <= 0:
            raise ConfigError(
                f"exchange_retransmit_timeout_s must be positive, "
                f"got {self.exchange_retransmit_timeout_s}"
            )

    def with_cut_threshold(self, ct: float) -> "DDPoliceConfig":
        """Copy with a different CT (for the Figure 12-14 sweeps)."""
        from dataclasses import replace

        return replace(self, cut_threshold=ct)

    def with_hardening(
        self,
        *,
        retry_limit: int = 3,
        retry_backoff_s: float = 1.0,
        quorum: float = 0.5,
        extension_limit: int = 1,
        retransmit_limit: int = 1,
        retransmit_timeout_s: float = 10.0,
    ) -> "DDPoliceConfig":
        """Copy with the fault-tolerant evidence profile switched on.

        Retries + quorum are designed to be enabled together: retries
        recover lost reports so the quorum is usually met within the base
        window, and the quorum extension gives the later (backed-off)
        retries time to land. Quorum alone would trade false negatives
        for false positives (real attackers abstained on); see
        docs/FAULTS.md.
        """
        from dataclasses import replace

        return replace(
            self,
            report_retry_limit=retry_limit,
            report_retry_backoff_s=retry_backoff_s,
            report_quorum=quorum,
            quorum_extension_limit=extension_limit,
            exchange_retransmit_limit=retransmit_limit,
            exchange_retransmit_timeout_s=retransmit_timeout_s,
        )
