"""Neighbor query-traffic monitoring (Section 3.2).

"Two lists are designed in a peer for each of its logical neighbors,
Out_query(i) and In_query(i), to record the number of queries per minute
from and to the neighboring i."

:class:`TrafficMonitor` keeps a bounded history of completed minute
windows per neighbor, fed by the peer's window rollover, and answers the
two protocol questions: the latest Out_query(i)/In_query(i) pair (what a
Neighbor_Traffic report carries) and whether a neighbor crossed the
warning threshold.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Hashable, List, Mapping, Optional, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class MinuteSample:
    """Counts for one completed minute window for one neighbor."""

    minute: int
    out_queries: int
    in_queries: int


class TrafficMonitor:
    """Bounded per-neighbor history of minute-window counts.

    Keys are generic hashables (PeerId in the DES, int node ids in the
    fluid engine).
    """

    def __init__(self, history_minutes: int = 10) -> None:
        if history_minutes < 1:
            raise ConfigError("history_minutes must be >= 1")
        self.history_minutes = history_minutes
        self._history: Dict[Hashable, Deque[MinuteSample]] = {}

    # ------------------------------------------------------------------
    def record_window(
        self,
        minute: int,
        out_counts: Mapping[Hashable, int],
        in_counts: Mapping[Hashable, int],
    ) -> None:
        """Ingest one completed minute window's snapshots."""
        keys = set(out_counts) | set(in_counts)
        for key in keys:
            sample = MinuteSample(
                minute=minute,
                out_queries=int(out_counts.get(key, 0)),
                in_queries=int(in_counts.get(key, 0)),
            )
            dq = self._history.setdefault(key, deque(maxlen=self.history_minutes))
            dq.append(sample)

    def forget(self, neighbor: Hashable) -> None:
        """Drop history for a departed neighbor."""
        self._history.pop(neighbor, None)

    # ------------------------------------------------------------------
    def latest(self, neighbor: Hashable) -> Optional[MinuteSample]:
        dq = self._history.get(neighbor)
        return dq[-1] if dq else None

    def out_query(self, neighbor: Hashable) -> int:
        """Out_query(neighbor): queries we sent to it in the last minute."""
        sample = self.latest(neighbor)
        return sample.out_queries if sample else 0

    def in_query(self, neighbor: Hashable) -> int:
        """In_query(neighbor): queries it sent us in the last minute."""
        sample = self.latest(neighbor)
        return sample.in_queries if sample else 0

    def report_pair(self, neighbor: Hashable) -> Tuple[int, int]:
        """(Out_query, In_query) -- the last two Table 1 fields."""
        return self.out_query(neighbor), self.in_query(neighbor)

    # ------------------------------------------------------------------
    def suspicious_neighbors(self, warning_threshold_qpm: float) -> List[Hashable]:
        """Neighbors whose last-minute incoming count crossed the warning
        threshold (Section 3.3 suspicion rule)."""
        if warning_threshold_qpm <= 0:
            raise ConfigError("warning_threshold_qpm must be positive")
        result = []
        for key, dq in self._history.items():
            if dq and dq[-1].in_queries > warning_threshold_qpm:
                result.append(key)
        return result

    def history(self, neighbor: Hashable) -> List[MinuteSample]:
        return list(self._history.get(neighbor, ()))

    def tracked_neighbors(self) -> List[Hashable]:
        return list(self._history.keys())
