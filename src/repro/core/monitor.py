"""Neighbor query-traffic monitoring (Section 3.2).

"Two lists are designed in a peer for each of its logical neighbors,
Out_query(i) and In_query(i), to record the number of queries per minute
from and to the neighboring i."

:class:`TrafficMonitor` keeps a bounded history of completed minute
windows per neighbor, fed by the peer's window rollover, and answers the
two protocol questions: the latest Out_query(i)/In_query(i) pair (what a
Neighbor_Traffic report carries) and whether a neighbor crossed the
warning threshold.

The actual bookkeeping lives behind the pluggable
:class:`~repro.evidence.store.TrafficStore` interface
(:mod:`repro.evidence`): exact per-neighbor deques by default, or
count-min sketches at a fixed memory budget when the evidence config
selects ``backend="sketch"`` (docs/SKETCH.md).  ``MinuteSample`` is
re-exported here for compatibility with pre-refactor imports.

The warning threshold is validated at construction time (the PR 5/6
convention: config errors surface with a dotted path before a run
starts, e.g. ``police.warning_threshold_qpm`` via
:class:`~repro.core.config.DDPoliceConfig`), not on every
``suspicious_neighbors`` call.
"""

from __future__ import annotations

from typing import Hashable, List, Mapping, Optional, Tuple

from repro.errors import ConfigError
from repro.evidence.store import (
    ExactTrafficStore,
    MinuteSample,
    TrafficStore,
)

__all__ = ["MinuteSample", "TrafficMonitor"]


class TrafficMonitor:
    """Bounded per-neighbor history of minute-window counts.

    Keys are generic hashables (PeerId in the DES, int node ids in the
    fluid engine).
    """

    def __init__(
        self,
        history_minutes: int = 10,
        *,
        warning_threshold_qpm: Optional[float] = None,
        store: Optional[TrafficStore] = None,
    ) -> None:
        if store is None:
            store = ExactTrafficStore(history_minutes)
        if warning_threshold_qpm is not None and warning_threshold_qpm <= 0:
            raise ConfigError("warning_threshold_qpm must be positive")
        self.store = store
        self.history_minutes = store.history_minutes
        self.warning_threshold_qpm = warning_threshold_qpm

    # ------------------------------------------------------------------
    def record_window(
        self,
        minute: int,
        out_counts: Mapping[Hashable, int],
        in_counts: Mapping[Hashable, int],
    ) -> None:
        """Ingest one completed minute window's snapshots."""
        self.store.record_window(minute, out_counts, in_counts)

    def forget(self, neighbor: Hashable) -> None:
        """Drop history for a departed neighbor."""
        self.store.forget(neighbor)

    # ------------------------------------------------------------------
    def latest(self, neighbor: Hashable) -> Optional[MinuteSample]:
        return self.store.latest(neighbor)

    def out_query(self, neighbor: Hashable) -> int:
        """Out_query(neighbor): queries we sent to it in the last minute."""
        return self.store.out_query(neighbor)

    def in_query(self, neighbor: Hashable) -> int:
        """In_query(neighbor): queries it sent us in the last minute."""
        return self.store.in_query(neighbor)

    def report_pair(self, neighbor: Hashable) -> Tuple[int, int]:
        """(Out_query, In_query) -- the last two Table 1 fields."""
        return self.store.report_pair(neighbor)

    # ------------------------------------------------------------------
    def suspicious_neighbors(
        self, warning_threshold_qpm: Optional[float] = None
    ) -> List[Hashable]:
        """Neighbors whose last-minute incoming count crossed the warning
        threshold (Section 3.3 suspicion rule).

        With no argument, uses the threshold fixed at construction;
        thresholds are validated there (and by the configs that carry
        them), not per call.
        """
        threshold = (
            warning_threshold_qpm
            if warning_threshold_qpm is not None
            else self.warning_threshold_qpm
        )
        if threshold is None:
            raise ConfigError(
                "warning_threshold_qpm was neither configured at "
                "construction nor passed to suspicious_neighbors"
            )
        return self.store.suspicious_neighbors(threshold)

    def history(self, neighbor: Hashable) -> List[MinuteSample]:
        return self.store.history(neighbor)

    def tracked_neighbors(self) -> List[Hashable]:
        return self.store.tracked_neighbors()

    def evidence_bytes(self) -> int:
        """Nominal bytes of traffic evidence currently held."""
        return self.store.evidence_bytes()
