"""DD-POLICE: the paper's primary contribution.

Defending P2Ps from Overlay Distributed-Denial-of-Service (Section 3):
peers police their direct neighbors' query behaviour by cooperating with
each suspect's buddy group, then disconnect peers whose General or Single
indicator exceeds the cut threshold CT.

Module map
----------
``config``      tunables (q, warning threshold, CT, exchange period, ...)
``indicators``  Definitions 2.1-2.3: g(j,t), s(j,t,i), classification
``monitor``     per-neighbor In_query / Out_query minute windows
``wire``        Gnutella 0.6 header + Neighbor_Traffic body codec (Table 1)
``buddy``       buddy groups BG1-j (and the BGr-j generalization)
``exchange``    neighbor-list exchange policies + lying detection
``evidence``    per-suspect report collection with the 5 s window
``police``      the per-peer protocol engine for the message-level overlay
"""

from repro.core.config import DDPoliceConfig, ExchangePolicy
from repro.core.indicators import (
    NeighborReport,
    general_indicator,
    single_indicator,
    indicators_from_reports,
    is_bad_peer,
)
from repro.core.monitor import TrafficMonitor
from repro.core.buddy import BuddyGroup, buddy_group_of
from repro.core.wire import (
    GnutellaHeader,
    encode_neighbor_traffic,
    decode_neighbor_traffic,
    encode_neighbor_list,
    decode_neighbor_list,
)
from repro.core.exchange import NeighborListDirectory, ListExchangeProtocol
from repro.core.evidence import Investigation, InvestigationOutcome
from repro.core.police import DDPoliceEngine, deploy_ddpolice

__all__ = [
    "DDPoliceConfig",
    "ExchangePolicy",
    "NeighborReport",
    "general_indicator",
    "single_indicator",
    "indicators_from_reports",
    "is_bad_peer",
    "TrafficMonitor",
    "BuddyGroup",
    "buddy_group_of",
    "GnutellaHeader",
    "encode_neighbor_traffic",
    "decode_neighbor_traffic",
    "encode_neighbor_list",
    "decode_neighbor_list",
    "NeighborListDirectory",
    "ListExchangeProtocol",
    "Investigation",
    "InvestigationOutcome",
    "DDPoliceEngine",
    "deploy_ddpolice",
]
