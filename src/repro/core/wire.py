"""Binary wire format: Gnutella 0.6 header and DD-POLICE bodies.

Gnutella 0.6 unified message header (23 bytes)::

    offset  0: Message GUID        (16 bytes)
    offset 16: Payload descriptor  (1 byte)   -- 0x83 for Neighbor_Traffic
    offset 17: TTL                 (1 byte)
    offset 18: Hops                (1 byte)
    offset 19: Payload length      (4 bytes, little-endian per the spec)

Neighbor_Traffic body (Table 1, 20 bytes)::

    offset  0: Source IP Address      (4 bytes)
    offset  4: Suspect IP Address     (4 bytes)
    offset  8: Source timestamp       (4 bytes, seconds, big-endian)
    offset 12: # of Outgoing queries  (4 bytes, big-endian)
    offset 16: # of Incoming queries  (4 bytes, big-endian)

Neighbor-list body (payload 0x82): count (2 bytes) then count * 4-byte
addresses.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from repro.errors import WireFormatError
from repro.overlay.ids import Guid, PeerId
from repro.overlay.message import (
    MessageKind,
    NeighborListMessage,
    NeighborTrafficMessage,
)

HEADER_SIZE = 23
NEIGHBOR_TRAFFIC_BODY_SIZE = 20
_HEADER_STRUCT = struct.Struct("<16sBBBI")  # GUID, kind, ttl, hops, length
_TRAFFIC_BODY_STRUCT = struct.Struct(">4s4sIII")


def _decode_addr(raw: bytes, what: str) -> PeerId:
    """Decode a 4-byte address field, mapping any defect to the wire error."""
    try:
        return PeerId.from_ipv4_bytes(raw)
    except ValueError as exc:
        raise WireFormatError(f"bad {what} address: {exc}") from exc


@dataclass(frozen=True)
class GnutellaHeader:
    """Parsed 23-byte Gnutella message header."""

    guid: Guid
    kind: MessageKind
    ttl: int
    hops: int
    payload_length: int

    def __post_init__(self) -> None:
        if not (0 <= self.ttl <= 255):
            raise WireFormatError(f"ttl out of byte range: {self.ttl}")
        if not (0 <= self.hops <= 255):
            raise WireFormatError(f"hops out of byte range: {self.hops}")
        if self.payload_length < 0:
            raise WireFormatError("payload_length must be non-negative")

    def encode(self) -> bytes:
        return _HEADER_STRUCT.pack(
            self.guid.raw, self.kind.value, self.ttl, self.hops, self.payload_length
        )

    @classmethod
    def decode(cls, raw: bytes) -> "GnutellaHeader":
        if len(raw) < HEADER_SIZE:
            raise WireFormatError(
                f"header needs {HEADER_SIZE} bytes, got {len(raw)}"
            )
        guid_raw, kind_val, ttl, hops, length = _HEADER_STRUCT.unpack(raw[:HEADER_SIZE])
        try:
            kind = MessageKind(kind_val)
        except ValueError as exc:
            raise WireFormatError(f"unknown payload descriptor 0x{kind_val:02x}") from exc
        return cls(Guid(guid_raw), kind, ttl, hops, length)


# ---------------------------------------------------------------------------
# Neighbor_Traffic (Table 1)
# ---------------------------------------------------------------------------

def encode_neighbor_traffic(msg: NeighborTrafficMessage) -> bytes:
    """Serialize header + Table 1 body (43 bytes total)."""
    if msg.source is None or msg.suspect is None:
        raise WireFormatError("Neighbor_Traffic requires source and suspect")
    if msg.timestamp < 0 or msg.outgoing_queries < 0 or msg.incoming_queries < 0:
        raise WireFormatError("Neighbor_Traffic fields must be non-negative")
    if msg.timestamp > 0xFFFFFFFF:
        raise WireFormatError("timestamp exceeds 32 bits")
    if msg.outgoing_queries > 0xFFFFFFFF or msg.incoming_queries > 0xFFFFFFFF:
        raise WireFormatError("query counts exceed 32 bits")
    header = GnutellaHeader(
        guid=msg.guid,
        kind=MessageKind.NEIGHBOR_TRAFFIC,
        ttl=msg.ttl,
        hops=msg.hops,
        payload_length=NEIGHBOR_TRAFFIC_BODY_SIZE,
    )
    body = _TRAFFIC_BODY_STRUCT.pack(
        msg.source.ipv4_bytes(),
        msg.suspect.ipv4_bytes(),
        msg.timestamp,
        msg.outgoing_queries,
        msg.incoming_queries,
    )
    return header.encode() + body


def decode_neighbor_traffic(raw: bytes) -> NeighborTrafficMessage:
    """Parse header + body back into a message object."""
    header = GnutellaHeader.decode(raw)
    if header.kind is not MessageKind.NEIGHBOR_TRAFFIC:
        raise WireFormatError(f"expected Neighbor_Traffic, got {header.kind}")
    if header.payload_length != NEIGHBOR_TRAFFIC_BODY_SIZE:
        raise WireFormatError(
            f"Neighbor_Traffic body must be {NEIGHBOR_TRAFFIC_BODY_SIZE} bytes, "
            f"header says {header.payload_length}"
        )
    body = raw[HEADER_SIZE:]
    if len(body) < NEIGHBOR_TRAFFIC_BODY_SIZE:
        raise WireFormatError(f"truncated body: {len(body)} bytes")
    src_raw, sus_raw, ts, out_q, in_q = _TRAFFIC_BODY_STRUCT.unpack(
        body[:NEIGHBOR_TRAFFIC_BODY_SIZE]
    )
    return NeighborTrafficMessage(
        guid=header.guid,
        ttl=header.ttl,
        hops=header.hops,
        source=_decode_addr(src_raw, "source"),
        suspect=_decode_addr(sus_raw, "suspect"),
        timestamp=ts,
        outgoing_queries=out_q,
        incoming_queries=in_q,
    )


# ---------------------------------------------------------------------------
# Neighbor-list exchange (payload 0x82)
# ---------------------------------------------------------------------------

def encode_neighbor_list(msg: NeighborListMessage) -> bytes:
    """Serialize header + [sender, count, addresses...]."""
    if msg.sender is None:
        raise WireFormatError("neighbor list requires a sender")
    if len(msg.neighbors) > 0xFFFF:
        raise WireFormatError("too many neighbors for the 2-byte count")
    body = msg.sender.ipv4_bytes() + struct.pack(">H", len(msg.neighbors))
    for pid in sorted(msg.neighbors, key=lambda p: p.value):
        body += pid.ipv4_bytes()
    header = GnutellaHeader(
        guid=msg.guid,
        kind=MessageKind.NEIGHBOR_LIST,
        ttl=msg.ttl,
        hops=msg.hops,
        payload_length=len(body),
    )
    return header.encode() + body


def decode_neighbor_list(raw: bytes) -> NeighborListMessage:
    """Parse header + neighbor-list body back into a message object."""
    header = GnutellaHeader.decode(raw)
    if header.kind is not MessageKind.NEIGHBOR_LIST:
        raise WireFormatError(f"expected NeighborList, got {header.kind}")
    body = raw[HEADER_SIZE:]
    if len(body) != header.payload_length:
        raise WireFormatError(
            f"body length {len(body)} != header payload_length {header.payload_length}"
        )
    if len(body) < 6:
        raise WireFormatError("neighbor-list body too short")
    sender = _decode_addr(body[:4], "sender")
    (count,) = struct.unpack(">H", body[4:6])
    expected = 6 + 4 * count
    if len(body) != expected:
        raise WireFormatError(
            f"neighbor-list body length {len(body)} != expected {expected}"
        )
    neighbors = []
    for i in range(count):
        off = 6 + 4 * i
        neighbors.append(_decode_addr(body[off : off + 4], "neighbor"))
    return NeighborListMessage(
        guid=header.guid,
        ttl=header.ttl,
        hops=header.hops,
        sender=sender,
        neighbors=frozenset(neighbors),
    )
