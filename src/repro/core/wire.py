"""Binary wire format: Gnutella 0.6 header and DD-POLICE bodies.

Gnutella 0.6 unified message header (23 bytes)::

    offset  0: Message GUID        (16 bytes)
    offset 16: Payload descriptor  (1 byte)   -- 0x83 for Neighbor_Traffic
    offset 17: TTL                 (1 byte)
    offset 18: Hops                (1 byte)
    offset 19: Payload length      (4 bytes, little-endian per the spec)

Neighbor_Traffic body (Table 1, 20 bytes)::

    offset  0: Source IP Address      (4 bytes)
    offset  4: Suspect IP Address     (4 bytes)
    offset  8: Source timestamp       (4 bytes, seconds, big-endian)
    offset 12: # of Outgoing queries  (4 bytes, big-endian)
    offset 16: # of Incoming queries  (4 bytes, big-endian)

Neighbor-list body (payload 0x82): count (2 bytes) then count * 4-byte
addresses.

The live UDP testbed (:mod:`repro.live`) additionally needs the classic
Gnutella payloads on the wire; their codecs live here next to the
DD-POLICE bodies so every descriptor shares one contract: encode
validates field ranges, decode raises only
:class:`~repro.errors.WireFormatError` on malformed input.

Query body (payload 0x80)::

    offset  0: Minimum speed      (2 bytes, big-endian)
    offset  2: Search string      (UTF-8, keywords joined by spaces)
    last byte: NUL terminator

Pong body (payload 0x01, 14 bytes): port (2), synthetic IPv4 address
(4), shared-file count (4), shared kilobytes (4; always 0 here). The
testbed's id<->(host, port) mapping is learned from the datagram source
address, so the port field is advisory (0 unless the caller passes one).

Bye body (payload 0x02): reason code (2 bytes, big-endian) followed by
an optional UTF-8 reason text.

QueryHit body (payload 0x81): number of hits (1), port (2), synthetic
IPv4 address (4), speed (4), then 40 zero bytes per result descriptor
(at least one), then the originating query's GUID (16 bytes) in the
trailing servent-identifier slot -- our reverse-path routing keys on the
query GUID where real servents key on the message GUID.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from repro.errors import WireFormatError
from repro.overlay.ids import Guid, PeerId
from repro.overlay.message import (
    Bye,
    MessageKind,
    NeighborListMessage,
    NeighborTrafficMessage,
    Ping,
    Pong,
    Query,
    QueryHit,
)

HEADER_SIZE = 23
NEIGHBOR_TRAFFIC_BODY_SIZE = 20
PONG_BODY_SIZE = 14
_HEADER_STRUCT = struct.Struct("<16sBBBI")  # GUID, kind, ttl, hops, length
_TRAFFIC_BODY_STRUCT = struct.Struct(">4s4sIII")
_PONG_BODY_STRUCT = struct.Struct(">H4sII")  # port, ip, files, kbytes
_QUERY_HIT_HEAD_STRUCT = struct.Struct(">BH4sI")  # hits, port, ip, speed
_QUERY_HIT_DESCRIPTOR_SIZE = 40


def _decode_addr(raw: bytes, what: str) -> PeerId:
    """Decode a 4-byte address field, mapping any defect to the wire error."""
    try:
        return PeerId.from_ipv4_bytes(raw)
    except ValueError as exc:
        raise WireFormatError(f"bad {what} address: {exc}") from exc


@dataclass(frozen=True)
class GnutellaHeader:
    """Parsed 23-byte Gnutella message header."""

    guid: Guid
    kind: MessageKind
    ttl: int
    hops: int
    payload_length: int

    def __post_init__(self) -> None:
        if not (0 <= self.ttl <= 255):
            raise WireFormatError(f"ttl out of byte range: {self.ttl}")
        if not (0 <= self.hops <= 255):
            raise WireFormatError(f"hops out of byte range: {self.hops}")
        if self.payload_length < 0:
            raise WireFormatError("payload_length must be non-negative")

    def encode(self) -> bytes:
        return _HEADER_STRUCT.pack(
            self.guid.raw, self.kind.value, self.ttl, self.hops, self.payload_length
        )

    @classmethod
    def decode(cls, raw: bytes) -> "GnutellaHeader":
        if len(raw) < HEADER_SIZE:
            raise WireFormatError(
                f"header needs {HEADER_SIZE} bytes, got {len(raw)}"
            )
        guid_raw, kind_val, ttl, hops, length = _HEADER_STRUCT.unpack(raw[:HEADER_SIZE])
        try:
            kind = MessageKind(kind_val)
        except ValueError as exc:
            raise WireFormatError(f"unknown payload descriptor 0x{kind_val:02x}") from exc
        return cls(Guid(guid_raw), kind, ttl, hops, length)


# ---------------------------------------------------------------------------
# Neighbor_Traffic (Table 1)
# ---------------------------------------------------------------------------

def encode_neighbor_traffic(msg: NeighborTrafficMessage) -> bytes:
    """Serialize header + Table 1 body (43 bytes total)."""
    if msg.source is None or msg.suspect is None:
        raise WireFormatError("Neighbor_Traffic requires source and suspect")
    if msg.timestamp < 0 or msg.outgoing_queries < 0 or msg.incoming_queries < 0:
        raise WireFormatError("Neighbor_Traffic fields must be non-negative")
    if msg.timestamp > 0xFFFFFFFF:
        raise WireFormatError("timestamp exceeds 32 bits")
    if msg.outgoing_queries > 0xFFFFFFFF or msg.incoming_queries > 0xFFFFFFFF:
        raise WireFormatError("query counts exceed 32 bits")
    header = GnutellaHeader(
        guid=msg.guid,
        kind=MessageKind.NEIGHBOR_TRAFFIC,
        ttl=msg.ttl,
        hops=msg.hops,
        payload_length=NEIGHBOR_TRAFFIC_BODY_SIZE,
    )
    body = _TRAFFIC_BODY_STRUCT.pack(
        msg.source.ipv4_bytes(),
        msg.suspect.ipv4_bytes(),
        msg.timestamp,
        msg.outgoing_queries,
        msg.incoming_queries,
    )
    return header.encode() + body


def decode_neighbor_traffic(raw: bytes) -> NeighborTrafficMessage:
    """Parse header + body back into a message object."""
    header = GnutellaHeader.decode(raw)
    if header.kind is not MessageKind.NEIGHBOR_TRAFFIC:
        raise WireFormatError(f"expected Neighbor_Traffic, got {header.kind}")
    if header.payload_length != NEIGHBOR_TRAFFIC_BODY_SIZE:
        raise WireFormatError(
            f"Neighbor_Traffic body must be {NEIGHBOR_TRAFFIC_BODY_SIZE} bytes, "
            f"header says {header.payload_length}"
        )
    body = raw[HEADER_SIZE:]
    if len(body) < NEIGHBOR_TRAFFIC_BODY_SIZE:
        raise WireFormatError(f"truncated body: {len(body)} bytes")
    src_raw, sus_raw, ts, out_q, in_q = _TRAFFIC_BODY_STRUCT.unpack(
        body[:NEIGHBOR_TRAFFIC_BODY_SIZE]
    )
    return NeighborTrafficMessage(
        guid=header.guid,
        ttl=header.ttl,
        hops=header.hops,
        source=_decode_addr(src_raw, "source"),
        suspect=_decode_addr(sus_raw, "suspect"),
        timestamp=ts,
        outgoing_queries=out_q,
        incoming_queries=in_q,
    )


# ---------------------------------------------------------------------------
# Neighbor-list exchange (payload 0x82)
# ---------------------------------------------------------------------------

def encode_neighbor_list(msg: NeighborListMessage) -> bytes:
    """Serialize header + [sender, count, addresses...]."""
    if msg.sender is None:
        raise WireFormatError("neighbor list requires a sender")
    if len(msg.neighbors) > 0xFFFF:
        raise WireFormatError("too many neighbors for the 2-byte count")
    body = msg.sender.ipv4_bytes() + struct.pack(">H", len(msg.neighbors))
    for pid in sorted(msg.neighbors, key=lambda p: p.value):
        body += pid.ipv4_bytes()
    header = GnutellaHeader(
        guid=msg.guid,
        kind=MessageKind.NEIGHBOR_LIST,
        ttl=msg.ttl,
        hops=msg.hops,
        payload_length=len(body),
    )
    return header.encode() + body


def decode_neighbor_list(raw: bytes) -> NeighborListMessage:
    """Parse header + neighbor-list body back into a message object."""
    header = GnutellaHeader.decode(raw)
    if header.kind is not MessageKind.NEIGHBOR_LIST:
        raise WireFormatError(f"expected NeighborList, got {header.kind}")
    body = raw[HEADER_SIZE:]
    if len(body) != header.payload_length:
        raise WireFormatError(
            f"body length {len(body)} != header payload_length {header.payload_length}"
        )
    if len(body) < 6:
        raise WireFormatError("neighbor-list body too short")
    sender = _decode_addr(body[:4], "sender")
    (count,) = struct.unpack(">H", body[4:6])
    expected = 6 + 4 * count
    if len(body) != expected:
        raise WireFormatError(
            f"neighbor-list body length {len(body)} != expected {expected}"
        )
    neighbors = []
    for i in range(count):
        off = 6 + 4 * i
        neighbors.append(_decode_addr(body[off : off + 4], "neighbor"))
    return NeighborListMessage(
        guid=header.guid,
        ttl=header.ttl,
        hops=header.hops,
        sender=sender,
        neighbors=frozenset(neighbors),
    )


# ---------------------------------------------------------------------------
# shared decode plumbing for the classic Gnutella payloads
# ---------------------------------------------------------------------------

def _decode_body(raw: bytes, kind: MessageKind) -> "tuple[GnutellaHeader, bytes]":
    """Common prologue: parse + kind-check the header, length-check the body."""
    header = GnutellaHeader.decode(raw)
    if header.kind is not kind:
        raise WireFormatError(f"expected {kind.name}, got {header.kind}")
    body = raw[HEADER_SIZE:]
    if len(body) != header.payload_length:
        raise WireFormatError(
            f"body length {len(body)} != header payload_length "
            f"{header.payload_length}"
        )
    return header, body


def _decode_text(raw: bytes, what: str) -> str:
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireFormatError(f"bad {what} text: {exc}") from exc


# ---------------------------------------------------------------------------
# Ping (payload 0x00)
# ---------------------------------------------------------------------------

def encode_ping(msg: Ping) -> bytes:
    """Serialize a Ping: header only, empty body."""
    header = GnutellaHeader(
        guid=msg.guid, kind=MessageKind.PING, ttl=msg.ttl, hops=msg.hops,
        payload_length=0,
    )
    return header.encode()


def decode_ping(raw: bytes) -> Ping:
    """Parse a Ping; any payload bytes are a wire defect."""
    header, body = _decode_body(raw, MessageKind.PING)
    if body:
        raise WireFormatError(f"Ping carries no payload, got {len(body)} bytes")
    return Ping(guid=header.guid, ttl=header.ttl, hops=header.hops)


# ---------------------------------------------------------------------------
# Pong (payload 0x01)
# ---------------------------------------------------------------------------

def encode_pong(msg: Pong, *, port: int = 0) -> bytes:
    """Serialize header + 14-byte Pong body.

    ``port`` is the advertised UDP port; receivers learn the actual
    transport address from the datagram source, so 0 is acceptable.
    """
    if msg.responder is None:
        raise WireFormatError("Pong requires a responder")
    if not (0 <= port <= 0xFFFF):
        raise WireFormatError(f"port out of range: {port}")
    if not (0 <= msg.shared_files <= 0xFFFFFFFF):
        raise WireFormatError(f"shared_files exceeds 32 bits: {msg.shared_files}")
    header = GnutellaHeader(
        guid=msg.guid, kind=MessageKind.PONG, ttl=msg.ttl, hops=msg.hops,
        payload_length=PONG_BODY_SIZE,
    )
    body = _PONG_BODY_STRUCT.pack(
        port, msg.responder.ipv4_bytes(), msg.shared_files, 0
    )
    return header.encode() + body


def decode_pong(raw: bytes) -> Pong:
    """Parse header + Pong body back into a message object."""
    header, body = _decode_body(raw, MessageKind.PONG)
    if len(body) != PONG_BODY_SIZE:
        raise WireFormatError(
            f"Pong body must be {PONG_BODY_SIZE} bytes, got {len(body)}"
        )
    _port, ip_raw, files, _kbytes = _PONG_BODY_STRUCT.unpack(body)
    return Pong(
        guid=header.guid,
        ttl=header.ttl,
        hops=header.hops,
        responder=_decode_addr(ip_raw, "responder"),
        shared_files=files,
    )


# ---------------------------------------------------------------------------
# Query (payload 0x80)
# ---------------------------------------------------------------------------

def encode_query(msg: Query) -> bytes:
    """Serialize header + min-speed + NUL-terminated search string.

    Keywords are joined by single spaces on the wire, so a keyword that
    itself contains a space (or NUL, or is empty) would not survive the
    round trip -- encode rejects it rather than silently reshaping the
    query.
    """
    if not (0 <= msg.min_speed <= 0xFFFF):
        raise WireFormatError(f"min_speed out of range: {msg.min_speed}")
    for kw in msg.keywords:
        if not kw:
            raise WireFormatError("empty keyword cannot be encoded")
        if " " in kw or "\x00" in kw:
            raise WireFormatError(f"keyword contains a separator: {kw!r}")
    text = msg.search_string.encode("utf-8")
    body = struct.pack(">H", msg.min_speed) + text + b"\x00"
    header = GnutellaHeader(
        guid=msg.guid, kind=MessageKind.QUERY, ttl=msg.ttl, hops=msg.hops,
        payload_length=len(body),
    )
    return header.encode() + body


def decode_query(raw: bytes) -> Query:
    """Parse header + query body back into a message object."""
    header, body = _decode_body(raw, MessageKind.QUERY)
    if len(body) < 3:
        raise WireFormatError(f"Query body too short: {len(body)} bytes")
    if body[-1] != 0:
        raise WireFormatError("Query search string is not NUL-terminated")
    (min_speed,) = struct.unpack(">H", body[:2])
    text_raw = body[2:-1]
    if b"\x00" in text_raw:
        raise WireFormatError("Query search string contains an embedded NUL")
    text = _decode_text(text_raw, "search string")
    keywords = tuple(text.split(" ")) if text else ()
    return Query(
        guid=header.guid,
        ttl=header.ttl,
        hops=header.hops,
        keywords=keywords,
        min_speed=min_speed,
    )


# ---------------------------------------------------------------------------
# QueryHit (payload 0x81)
# ---------------------------------------------------------------------------

def encode_query_hit(msg: QueryHit, *, port: int = 0) -> bytes:
    """Serialize header + hit body (descriptors are zero padding).

    The originating query's GUID rides in the trailing 16-byte servent
    slot: that is what reverse-path routing keys on (see
    :class:`~repro.overlay.message.QueryHit`).
    """
    if msg.responder is None:
        raise WireFormatError("QueryHit requires a responder")
    if msg.query_guid is None:
        raise WireFormatError("QueryHit requires the query GUID")
    if not (0 <= msg.result_count <= 0xFF):
        raise WireFormatError(f"result_count out of byte range: {msg.result_count}")
    if not (0 <= port <= 0xFFFF):
        raise WireFormatError(f"port out of range: {port}")
    descriptors = max(1, msg.result_count)
    body = (
        _QUERY_HIT_HEAD_STRUCT.pack(
            msg.result_count, port, msg.responder.ipv4_bytes(), 0
        )
        + b"\x00" * (_QUERY_HIT_DESCRIPTOR_SIZE * descriptors)
        + msg.query_guid.raw
    )
    header = GnutellaHeader(
        guid=msg.guid, kind=MessageKind.QUERY_HIT, ttl=msg.ttl, hops=msg.hops,
        payload_length=len(body),
    )
    return header.encode() + body


def decode_query_hit(raw: bytes) -> QueryHit:
    """Parse header + hit body back into a message object."""
    header, body = _decode_body(raw, MessageKind.QUERY_HIT)
    head_size = _QUERY_HIT_HEAD_STRUCT.size
    if len(body) < head_size + _QUERY_HIT_DESCRIPTOR_SIZE + 16:
        raise WireFormatError(f"QueryHit body too short: {len(body)} bytes")
    count, _port, ip_raw, _speed = _QUERY_HIT_HEAD_STRUCT.unpack(body[:head_size])
    expected = head_size + _QUERY_HIT_DESCRIPTOR_SIZE * max(1, count) + 16
    if len(body) != expected:
        raise WireFormatError(
            f"QueryHit body length {len(body)} != expected {expected} "
            f"for {count} result(s)"
        )
    return QueryHit(
        guid=header.guid,
        ttl=header.ttl,
        hops=header.hops,
        responder=_decode_addr(ip_raw, "responder"),
        result_count=count,
        query_guid=Guid(body[-16:]),
    )


# ---------------------------------------------------------------------------
# Bye (payload 0x02)
# ---------------------------------------------------------------------------

def encode_bye(msg: Bye) -> bytes:
    """Serialize header + reason code + optional UTF-8 reason text."""
    if not (0 <= msg.reason_code <= 0xFFFF):
        raise WireFormatError(f"reason_code out of range: {msg.reason_code}")
    body = struct.pack(">H", msg.reason_code) + msg.reason_text.encode("utf-8")
    header = GnutellaHeader(
        guid=msg.guid, kind=MessageKind.BYE, ttl=msg.ttl, hops=msg.hops,
        payload_length=len(body),
    )
    return header.encode() + body


def decode_bye(raw: bytes) -> Bye:
    """Parse header + Bye body back into a message object."""
    header, body = _decode_body(raw, MessageKind.BYE)
    if len(body) < 2:
        raise WireFormatError(f"Bye body too short: {len(body)} bytes")
    (code,) = struct.unpack(">H", body[:2])
    return Bye(
        guid=header.guid,
        ttl=header.ttl,
        hops=header.hops,
        reason_code=code,
        reason_text=_decode_text(body[2:], "reason"),
    )
