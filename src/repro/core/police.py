"""DD-POLICE per-peer protocol engine (message-level overlay).

Wires the three protocol steps of Section 3 onto a live
:class:`~repro.overlay.peer.Peer`:

1. **Neighbor list exchanging** -- periodic (or event-driven) broadcast of
   the local neighbor list; received lists populate the directory that
   buddy groups are derived from; pairwise consistency is cross-checked.
2. **Neighbor query traffic monitoring** -- each minute window's
   In/Out_query snapshots feed the :class:`TrafficMonitor`.
3. **Bad peer recognizing** -- a neighbor whose last-minute incoming count
   exceeds the warning threshold opens an :class:`Investigation`;
   Neighbor_Traffic messages are exchanged with the suspect's buddy
   group (deduplicated over 5 s); after the collection window the General
   and Single indicators decide against the cut threshold and the suspect
   is disconnected with an explanatory Bye.

A compromised peer runs the same engine with a non-honest
:class:`CheatStrategy`, which distorts (or silences) only its *outgoing
reports* -- exactly the adversary model of Section 3.4.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Set

from repro.attack.adaptive import CollusionRing
from repro.attack.cheating import CheatStrategy, apply_cheat
from repro.core.buddy import buddy_group_of
from repro.core.config import DDPoliceConfig, ExchangePolicy
from repro.core.evidence import Investigation, InvestigationOutcome
from repro.core.exchange import ConsistencyTracker, NeighborListDirectory
from repro.core.indicators import NeighborReport
from repro.core.monitor import TrafficMonitor
from repro.errors import ProtocolError
from repro.evidence.dedup import make_dedup_window
from repro.evidence.store import make_traffic_store
from repro.metrics.errors import Judgment, JudgmentLog
from repro.overlay.ids import PeerId
from repro.overlay.message import (
    Bye,
    Message,
    NeighborListMessage,
    NeighborTrafficMessage,
    Ping,
    Pong,
)
from repro.overlay.network import OverlayNetwork
from repro.overlay.peer import Peer
from repro.simkit.timers import PeriodicTask


class DDPoliceEngine:
    """One peer's DD-POLICE instance."""

    def __init__(
        self,
        network: OverlayNetwork,
        peer: Peer,
        config: DDPoliceConfig = DDPoliceConfig(),
        *,
        judgment_log: Optional[JudgmentLog] = None,
        cheat_strategy: CheatStrategy = CheatStrategy.HONEST,
        collusion: Optional[CollusionRing] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.network = network
        self.peer = peer
        self.config = config
        self.cheat_strategy = cheat_strategy
        #: Set only on compromised peers running the COLLUDE strategy:
        #: the ring whose members this engine lies for (fabricated
        #: neighbor-list claims + excusing Neighbor_Traffic answers).
        self.collusion = (
            collusion
            if collusion is not None and peer.id in collusion.members
            else None
        )
        self.judgments = judgment_log if judgment_log is not None else JudgmentLog()
        self._rng = rng or random.Random(peer.id.value)

        # Evidence stores, pluggable (exact by default; docs/SKETCH.md).
        self.monitor = TrafficMonitor(
            warning_threshold_qpm=config.warning_threshold_qpm,
            store=make_traffic_store(config.evidence),
        )
        self.directory = NeighborListDirectory()
        self.consistency = ConsistencyTracker(config.inconsistency_tolerance)
        self._investigations: Dict[PeerId, Investigation] = {}
        self._report_dedup = make_dedup_window(
            config.evidence, window_s=config.report_dedup_window_s
        )

        self.reports_sent = 0
        self.reports_received = 0
        self.lists_sent = 0
        self.disconnects_issued = 0
        self.pings_sent = 0
        self.pongs_received = 0
        # Hardening counters (all stay 0 under the paper-literal config).
        self.report_retries_sent = 0
        self.window_extensions_used = 0
        self.quorum_abstentions = 0
        self.list_retransmits_sent = 0
        self.stale_lists_rejected = 0
        self.stale_reports_rejected = 0
        # Liveness: directory owners we pinged and are awaiting a Pong
        # from; two missed rounds evict the entry ("A peer pings members
        # within the same BG periodically to make sure that other members
        # are online", Section 3.1).
        self._awaiting_pong: Dict[PeerId, int] = {}
        # Rate limiter for confirmation list exchanges with non-neighbors.
        self._list_courtesy: Dict[PeerId, float] = {}
        # Last time each peer's list reached us -- the implicit ack that
        # cancels a pending exchange retransmission.
        self._last_list_from: Dict[PeerId, float] = {}
        self._stopped = False

        peer.control_handlers.append(self._on_control)
        peer.disconnect_listeners.append(self._on_neighbor_gone)
        network.minute_listeners.append(self._on_minute)
        self._liveness_task = PeriodicTask(
            network.sim,
            config.liveness_ping_period_s,
            self._ping_directory,
            jitter=min(5.0, config.liveness_ping_period_s / 10.0),
            start_delay=self._rng.uniform(0.0, config.liveness_ping_period_s),
            rng=self._rng,
        )
        self._exchange_task: Optional[PeriodicTask] = None
        if config.exchange_policy is ExchangePolicy.PERIODIC:
            self._exchange_task = PeriodicTask(
                network.sim,
                config.exchange_period_s,
                self._broadcast_list,
                jitter=min(5.0, config.exchange_period_s / 10.0),
                start_delay=self._rng.uniform(0.0, config.exchange_period_s),
                rng=self._rng,
            )
        else:
            peer.connect_listeners.append(lambda _nb: self._broadcast_list())
            peer.disconnect_listeners.append(
                lambda _nb, _reason: self._broadcast_list()
            )
            # Event-driven peers still announce once at startup.
            network.sim.schedule_in(self._rng.uniform(0.0, 5.0), self._broadcast_list)

    # ------------------------------------------------------------------
    # step 1: neighbor-list exchange
    # ------------------------------------------------------------------
    def _make_list_msg(self) -> NeighborListMessage:
        claimed = frozenset(self.peer.neighbors)
        if self.collusion is not None:
            # The consistent lie: claim every fellow colluder as a
            # neighbor. Each of them claims us back, so the pairwise
            # cross-check of Section 3.2 sees two corroborating lists --
            # and the fabricated members enlarge the suspect's buddy
            # group with witnesses that will excuse it.
            claimed = claimed | (self.collusion.members - {self.peer.id})
        return NeighborListMessage(
            guid=self.network.guid_factory.new(),
            ttl=1,
            hops=0,
            sender=self.peer.id,
            neighbors=claimed,
            sent_at=self.network.now,
        )

    def _broadcast_list(self) -> None:
        if not self.peer.online or not self.peer.neighbors:
            return
        msg = self._make_list_msg()
        now = self.network.now
        for nb in list(self.peer.neighbors):
            self.peer.send_control(nb, msg)
            self.lists_sent += 1
            if self.config.exchange_retransmit_limit > 0:
                self.network.sim.schedule_in(
                    self.config.exchange_retransmit_timeout_s,
                    self._maybe_retransmit_list,
                    nb,
                    now,
                    1,
                )

    def _maybe_retransmit_list(
        self, nb: PeerId, sent_at: float, attempt: int
    ) -> None:
        """Re-send our list to a neighbor that stayed silent.

        Hearing *anything* list-shaped from ``nb`` after our send is the
        implicit ack: the link works and both directories are fresh. A
        silent neighbor gets our (current) list again, up to the
        configured retransmit limit.
        """
        if self._stopped or not self.peer.online or nb not in self.peer.neighbors:
            return
        if self._last_list_from.get(nb, float("-inf")) >= sent_at:
            return
        self.list_retransmits_sent += 1
        msg = self._make_list_msg()
        self.peer.send_control(nb, msg)
        self.lists_sent += 1
        if attempt < self.config.exchange_retransmit_limit:
            self.network.sim.schedule_in(
                self.config.exchange_retransmit_timeout_s,
                self._maybe_retransmit_list,
                nb,
                self.network.now,
                attempt + 1,
            )

    def _on_neighbor_list(self, src: PeerId, msg: NeighborListMessage) -> None:
        if msg.sender is None:
            raise ProtocolError("neighbor list without sender")
        self._last_list_from[src] = self.network.now
        if not self.directory.update(
            msg.sender, set(msg.neighbors), self.network.now, sent_at=msg.sent_at
        ):
            # Reordered/duplicated stale list: fresher evidence already
            # held, so neither the directory nor the consistency checks
            # may regress to it.
            self.stale_lists_rejected += 1
            return
        # "they will confirm the correctness of the lists with the
        # corresponding peers": ask claimed peers whose list we lack (or
        # hold only a stale copy of) to exchange lists with us (they
        # reciprocate below).
        for claimed in msg.neighbors:
            if claimed == self.peer.id:
                continue
            age = self.directory.age(claimed, self.network.now)
            if age is None or age > self.config.exchange_period_s:
                self._send_list_to(claimed)
        # A list from a peer that is not our neighbor is a confirmation
        # request: reciprocate so the asker can cross-check.
        if msg.sender not in self.peer.neighbors:
            self._send_list_to(msg.sender)
        self._check_consistency(msg.sender, set(msg.neighbors))

    def _send_list_to(self, target: PeerId) -> None:
        """Send our list directly to ``target``, at most once per period."""
        if not self.peer.online or self._stopped:
            return
        now = self.network.now
        last = self._list_courtesy.get(target)
        if last is not None and now - last < self.config.exchange_period_s:
            return
        self._list_courtesy[target] = now
        self.network.transmit(self.peer.id, target, self._make_list_msg())
        self.lists_sent += 1

    def _check_consistency(self, owner: PeerId, claimed: Set[PeerId]) -> None:
        """Cross-check a fresh list against lists we already hold.

        "If a peer finds out that the claim of a pair of neighboring peers
        are not consistent, it will disconnect with the one which is its
        neighbor" -- the strike counter tolerates transient churn races,
        and only lists fresh within ~one exchange period count as
        evidence (a disconnected peer's fossil list must not convict its
        ex-neighbors).
        """
        max_age = 1.5 * self.config.exchange_period_s
        now = self.network.now

        def fresh(snap) -> bool:
            return snap is not None and now - snap.received_at <= max_age

        for other in claimed:
            snap = self.directory.get(other)
            if not fresh(snap):
                continue
            if owner not in snap.neighbors:
                self._strike_pair(owner, other)
            else:
                self.consistency.observe_consistent(owner, other)
        # Reverse direction: peers whose stored lists claim `owner` but
        # owner's fresh list does not reciprocate. The reverse index
        # yields the same owners (in the same order) a full directory
        # scan filtered on membership would.
        for peer in self.directory.claimers(owner):
            if peer == owner:
                continue
            if not fresh(self.directory.get(peer)):
                continue
            if peer not in claimed:
                self._strike_pair(peer, owner)
            else:
                self.consistency.observe_consistent(peer, owner)

    def _strike_pair(self, a: PeerId, b: PeerId) -> None:
        if self.consistency.strike(a, b):
            # "it will disconnect with the one which is its neighbor"
            for candidate in (a, b):
                if candidate in self.peer.neighbors:
                    self._disconnect(
                        candidate,
                        reason="inconsistent_list",
                        g=float("nan"),
                        s=float("nan"),
                        bye_code=Bye.REASON_LIST_INCONSISTENT,
                    )
            self.consistency.clear(a, b)

    # ------------------------------------------------------------------
    # buddy-group liveness (Section 3.1)
    # ------------------------------------------------------------------
    def _ping_directory(self) -> None:
        """Ping every peer we hold a neighbor list for; evict the stale.

        Members that missed the previous round's Pong are forgotten, so
        buddy groups stop counting long-gone peers as silent (0,0)
        witnesses forever.
        """
        if not self.peer.online:
            return
        for owner in list(self.directory.owners()):
            missed = self._awaiting_pong.get(owner, 0)
            if missed >= 2:
                self.directory.forget(owner)
                self._awaiting_pong.pop(owner, None)
                continue
            self._awaiting_pong[owner] = missed + 1
            ping = Ping(guid=self.network.guid_factory.new(), ttl=1)
            # BG members need not be direct neighbors; ping them directly.
            self.network.transmit(self.peer.id, owner, ping)
            self.pings_sent += 1

    def _on_pong(self, src: PeerId) -> None:
        self.pongs_received += 1
        self._awaiting_pong.pop(src, None)

    # ------------------------------------------------------------------
    # step 2: traffic monitoring
    # ------------------------------------------------------------------
    def _on_minute(self, minute: int, now: float) -> None:
        # A stopped engine stays subscribed to the network's minute
        # listeners; it must not keep opening investigations.
        if self._stopped or not self.peer.online:
            return
        self.monitor.record_window(
            minute, self.peer.last_minute_out, self.peer.last_minute_in
        )
        for suspect in self.monitor.suspicious_neighbors():
            if suspect in self.peer.neighbors:
                self._open_investigation(suspect)

    # ------------------------------------------------------------------
    # step 3: bad-peer recognition
    # ------------------------------------------------------------------
    def _open_investigation(self, suspect: PeerId) -> None:
        if suspect in self._investigations:
            return  # already collecting evidence
        group = buddy_group_of(
            suspect,
            lambda p: self.directory.known_neighbors(p),
            radius=self.config.radius,
            now=self.network.now,
        )
        members = set(group.members)
        members.add(self.peer.id)  # we are a neighbor of the suspect
        members.discard(suspect)
        expected = frozenset(members - {self.peer.id})
        own_out, own_in = self.monitor.report_pair(suspect)
        inv = Investigation(
            observer=self.peer.id,
            suspect=suspect,
            started_at=self.network.now,
            expected_members=expected,
            own_out_to_suspect=own_out,
            own_in_from_suspect=own_in,
        )
        self._investigations[suspect] = inv
        tracer = self.network.tracer
        if tracer is not None:
            tracer.event(
                "police.suspect",
                t=self.network.now,
                observer=self.peer.id.value,
                suspect=suspect.value,
                expected=len(expected),
            )
        self._send_reports(suspect, expected)
        self.network.sim.schedule_in(
            self.config.collection_window_s, self._conclude, suspect
        )
        if self.config.report_retry_limit > 0 and expected:
            self.network.sim.schedule_in(
                self.config.report_retry_backoff_s, self._retry_missing, suspect
            )

    def _retry_missing(self, suspect: PeerId) -> None:
        """Re-request reports from members still silent (hardening).

        Each attempt sends our own (possibly cheated) numbers again with
        ``is_retry`` set, asking the member to answer us directly even
        inside its dedup window. Attempts back off exponentially; the
        chain dies with the investigation, so retries are bounded by the
        (possibly quorum-extended) collection window. Retries recover
        evidence *about* others -- a cheating member's reply still goes
        through its own cheat strategy, so retrying never helps a liar.
        """
        if self._stopped or not self.peer.online:
            return
        inv = self._investigations.get(suspect)
        if inv is None or inv.outcome is not InvestigationOutcome.PENDING:
            return
        if inv.retries_used >= self.config.report_retry_limit:
            return
        missing = inv.missing_members
        if not missing:
            return
        inv.retries_used += 1
        self.report_retries_sent += 1
        self._send_reports(suspect, set(missing), is_retry=True, force=True)
        if inv.retries_used < self.config.report_retry_limit:
            delay = self.config.report_retry_backoff_s * (2 ** inv.retries_used)
            self.network.sim.schedule_in(delay, self._retry_missing, suspect)

    def _send_reports(
        self,
        suspect: PeerId,
        members: Set[PeerId],
        *,
        is_retry: bool = False,
        force: bool = False,
    ) -> None:
        """Send our Neighbor_Traffic numbers to the other BG members.

        ``force`` bypasses the 5 s dedup window without updating its
        stamp -- used for retry re-requests and for direct answers to
        them, which must go out even when we reported recently.
        """
        now = self.network.now
        if not force:
            if not self._report_dedup.should_send(suspect, now):
                return
            self._report_dedup.record(suspect, now)
        out_q, in_q = self.monitor.report_pair(suspect)
        reported = apply_cheat(
            self.cheat_strategy,
            out_q,
            in_q,
            suspect_is_colluder=(
                self.collusion is not None and suspect in self.collusion.members
            ),
            collude_excuse_qpm=(
                self.collusion.excuse_qpm if self.collusion is not None else 0.0
            ),
        )
        if reported is None:
            return  # SILENT: refuse to report (retries don't change this)
        rep_out, rep_in = reported
        if members and self.network.tracer is not None:
            self.network.tracer.event(
                "police.report",
                t=now,
                observer=self.peer.id.value,
                suspect=suspect.value,
                members=len(members),
                retry=is_retry,
            )
        for member in members:
            msg = NeighborTrafficMessage(
                guid=self.network.guid_factory.new(),
                ttl=1,
                hops=0,
                source=self.peer.id,
                suspect=suspect,
                timestamp=int(now),
                outgoing_queries=rep_out,
                incoming_queries=rep_in,
                is_retry=is_retry,
            )
            self.peer.send_control(member, msg)
            self.reports_sent += 1

    def _on_neighbor_traffic(self, src: PeerId, msg: NeighborTrafficMessage) -> None:
        if msg.suspect is None or msg.source is None:
            raise ProtocolError("Neighbor_Traffic missing source/suspect")
        self.reports_received += 1
        suspect = msg.suspect
        if suspect == self.peer.id:
            return  # gossip about ourselves; nothing to do
        if suspect not in self.peer.neighbors:
            if msg.is_retry:
                # A direct re-request: the asker needs our answer (even a
                # zero count) to reach its quorum. Answer it alone, past
                # the dedup window.
                self._send_reports(suspect, {msg.source}, force=True)
                return
            # No longer (or not yet) in this buddy group, but the question
            # is about the *last minute*: answer the group from our
            # retained counters so a just-closed connection still counts.
            # A colluder asked about a fellow ring member always answers:
            # its membership in the BG is itself fabricated (the
            # consistent neighbor-list lie), so it has no real counters,
            # only the excuse apply_cheat will produce.
            out_q, in_q = self.monitor.report_pair(suspect)
            colluding_for = (
                self.collusion is not None and suspect in self.collusion.members
            )
            if out_q or in_q or colluding_for:
                members = set(self.directory.known_neighbors(suspect))
                members.add(msg.source)
                members.discard(self.peer.id)
                members.discard(suspect)
                self._send_reports(suspect, members)
            return
        inv = self._investigations.get(suspect)
        if inv is None:
            if msg.is_retry:
                # A re-request is a poll, not an alarm: answer it, but do
                # not open an investigation we would never have joined
                # had the (lost) original arrived -- otherwise retries
                # recruit extra judges and each one is a fresh chance to
                # misjudge under the very loss being mitigated.
                self._send_reports(suspect, {msg.source}, force=True)
                return
            # A buddy noticed before we did: join the investigation.
            self._open_investigation(suspect)
            inv = self._investigations.get(suspect)
            if inv is None:
                return
        accepted = inv.add_report(
            msg.source,
            NeighborReport(
                member=msg.source.value,
                outgoing=msg.outgoing_queries,
                incoming=msg.incoming_queries,
            ),
            timestamp=msg.timestamp,
        )
        if not accepted and msg.source in inv.report_times:
            self.stale_reports_rejected += 1
        if msg.is_retry:
            # Answer the asker directly (is_retry=False on the reply, so
            # two observers re-requesting each other cannot loop).
            self._send_reports(suspect, {msg.source}, force=True)
        # "it will check whether it has sent a Neighbor_Traffic message to
        # other members in this BG in past 5 seconds. If not, it will send
        # such a message" -- handled by the dedup window in _send_reports.
        self._send_reports(suspect, set(inv.expected_members))
        if inv.complete:
            self._conclude(suspect)

    def _conclude(self, suspect: PeerId) -> None:
        # The timer survives stop(); a stopped engine must not judge.
        if self._stopped:
            return
        inv = self._investigations.get(suspect)
        if inv is None or inv.outcome is not InvestigationOutcome.PENDING:
            return
        quorum = self.config.report_quorum
        if quorum > 0.0 and not inv.quorum_met(quorum):
            if inv.window_extensions < self.config.quorum_extension_limit:
                # Too little evidence to judge on assumed zeros: extend
                # the window, which also gives backed-off retries time.
                inv.window_extensions += 1
                self.window_extensions_used += 1
                self.network.sim.schedule_in(
                    self.config.collection_window_s, self._conclude, suspect
                )
                return
            # Still below quorum after extending: abstain. Convicting
            # here would mean cutting on mostly-assumed zeros -- exactly
            # the loss-driven false negatives the quorum exists to stop.
            self.quorum_abstentions += 1
            inv.abstain(tracer=self.network.tracer, now=self.network.now)
            g, s = inv.indicator_pair()
            self.judgments.record(
                Judgment(
                    time=self.network.now,
                    observer=self.peer.id,
                    suspect=suspect,
                    g_value=g,
                    s_value=s,
                    disconnected=False,
                    reason="quorum_unmet",
                )
            )
            self._investigations.pop(suspect, None)
            return
        outcome = inv.decide(
            self.config, tracer=self.network.tracer, now=self.network.now
        )
        g, s = inv.indicator_pair()
        disconnected = outcome is InvestigationOutcome.CONVICTED
        if disconnected and suspect in self.peer.neighbors:
            self._disconnect(suspect, reason="ddos", g=g, s=s)
        else:
            self.judgments.record(
                Judgment(
                    time=self.network.now,
                    observer=self.peer.id,
                    suspect=suspect,
                    g_value=g,
                    s_value=s,
                    disconnected=False,
                )
            )
        # _disconnect may already have evicted the entry via the
        # neighbor-gone listener.
        self._investigations.pop(suspect, None)

    def _disconnect(
        self,
        suspect: PeerId,
        *,
        reason: str,
        g: float,
        s: float,
        bye_code: int = Bye.REASON_DDOS_SUSPECT,
    ) -> None:
        self.disconnects_issued += 1
        tracer = self.network.tracer
        if tracer is not None:
            tracer.event(
                "police.cut",
                t=self.network.now,
                observer=self.peer.id.value,
                suspect=suspect.value,
                reason=reason,
                g=None if g != g else g,
                s=None if s != s else s,
            )
        self.judgments.record(
            Judgment(
                time=self.network.now,
                observer=self.peer.id,
                suspect=suspect,
                g_value=g,
                s_value=s,
                disconnected=True,
                reason=reason,
            )
        )
        bye = Bye(
            guid=self.network.guid_factory.new(),
            ttl=1,
            hops=0,
            reason_code=bye_code,
            reason_text=reason,
        )
        try:
            self.peer.send_control(suspect, bye)
        except ProtocolError:
            pass  # already gone
        self.network.disconnect(self.peer.id, suspect, reason_code=bye_code)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _on_control(self, src: PeerId, msg: Message) -> None:
        if isinstance(msg, NeighborListMessage):
            self._on_neighbor_list(src, msg)
        elif isinstance(msg, NeighborTrafficMessage):
            self._on_neighbor_traffic(src, msg)
        elif isinstance(msg, Pong):
            self._on_pong(msg.responder if msg.responder is not None else src)
        # Bye needs no protocol action here.

    def _on_neighbor_gone(self, neighbor: PeerId, reason_code: int) -> None:
        # Keep the monitor history: it is still valid evidence about the
        # just-ended minute, and buddy groups may ask for it right after a
        # disconnection race. The bounded history ages it out naturally.
        self._investigations.pop(neighbor, None)

    def stop(self) -> None:
        self._stopped = True
        if self._exchange_task is not None:
            self._exchange_task.stop()
        self._liveness_task.stop()


def deploy_ddpolice(
    network: OverlayNetwork,
    config: DDPoliceConfig = DDPoliceConfig(),
    *,
    bad_peers: Optional[Set[PeerId]] = None,
    bad_strategy: CheatStrategy = CheatStrategy.SILENT,
    collusion: Optional[CollusionRing] = None,
    rng: Optional[random.Random] = None,
) -> Dict[PeerId, DDPoliceEngine]:
    """Attach a DD-POLICE engine to every peer in the network.

    Good peers report honestly; peers in ``bad_peers`` use
    ``bad_strategy``. When ``bad_strategy`` is COLLUDE, ``collusion``
    (default: a ring over ``bad_peers``) arms the compromised engines'
    coordinated lying. All engines share one :class:`JudgmentLog`
    (accessible on any engine as ``.judgments``).
    """
    bad_peers = bad_peers or set()
    log = JudgmentLog()
    rng = rng or random.Random(0)
    if collusion is None and bad_strategy is CheatStrategy.COLLUDE and bad_peers:
        collusion = CollusionRing(members=frozenset(bad_peers))
    engines: Dict[PeerId, DDPoliceEngine] = {}
    for pid, peer in network.peers.items():
        strategy = bad_strategy if pid in bad_peers else CheatStrategy.HONEST
        engines[pid] = DDPoliceEngine(
            network,
            peer,
            config,
            judgment_log=log,
            cheat_strategy=strategy,
            collusion=collusion if pid in bad_peers else None,
            rng=random.Random(rng.getrandbits(32)),
        )
    return engines
