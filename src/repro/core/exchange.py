"""Neighbor-list exchange (Section 3.1).

Two policies are compared in Section 3.7.1:

* **periodic** -- every peer sends its neighbor list to all neighbors
  every ``s`` minutes (the paper settles on s = 2);
* **event-driven** -- a peer reports whenever a neighbor joins or leaves
  ("favorable to relatively stable networks, but will cause some peers to
  be super busy ... if the network is highly dynamic").

The directory also implements the lying countermeasure: exchanged lists
are cross-checked pairwise; inconsistent claims earn strikes and, past a
tolerance, disconnection with an explanatory Bye.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.core.config import DDPoliceConfig, ExchangePolicy
from repro.errors import ConfigError


@dataclass(frozen=True)
class ListSnapshot:
    """A neighbor list received from one peer."""

    owner: Hashable
    neighbors: FrozenSet[Hashable]
    received_at: float
    #: Sender-side send time, when the message carried one. Lets the
    #: directory reject a stale list delivered (reordered) after a
    #: fresher one.
    sent_at: Optional[float] = None


class NeighborListDirectory:
    """Last-known neighbor lists, as seen by one observer.

    Staleness matters: between exchanges, churn makes lists wrong with
    probability ~ period/lifetime (the "around 3%" analysis in
    Section 3.1), which is the mechanism behind CT-dependent misjudgment.
    """

    def __init__(self) -> None:
        self._lists: Dict[Hashable, ListSnapshot] = {}
        #: Reverse index: peer -> owners whose stored list claims it.
        #: Makes the per-list consistency cross-check O(claimers) instead
        #: of O(directory); behavior-identical because :meth:`claimers`
        #: replays the owners in ``_lists`` insertion order (``_seq``).
        self._claimed_by: Dict[Hashable, Set[Hashable]] = {}
        self._seq: Dict[Hashable, int] = {}
        self._next_seq = 0

    def update(
        self,
        owner: Hashable,
        neighbors: Set[Hashable],
        now: float,
        *,
        sent_at: Optional[float] = None,
    ) -> bool:
        """Store ``owner``'s list; returns False if rejected as stale.

        A list is stale when both the held and the incoming snapshot
        carry ``sent_at`` stamps and the incoming one was sent strictly
        earlier -- i.e. the network reordered (or duplicated-with-delay)
        the exchanges. Equal stamps overwrite idempotently.
        """
        held = self._lists.get(owner)
        if sent_at is not None:
            if held is not None and held.sent_at is not None and sent_at < held.sent_at:
                return False
        new = frozenset(neighbors)
        old = held.neighbors if held is not None else frozenset()
        for peer in old - new:
            self._claimed_by[peer].discard(owner)
        for peer in new - old:
            self._claimed_by.setdefault(peer, set()).add(owner)
        if held is None:
            # Mirrors dict key semantics: overwriting keeps the original
            # position, so the sequence number is assigned once.
            self._seq[owner] = self._next_seq
            self._next_seq += 1
        self._lists[owner] = ListSnapshot(
            owner=owner,
            neighbors=new,
            received_at=now,
            sent_at=sent_at,
        )
        return True

    def forget(self, owner: Hashable) -> None:
        snap = self._lists.pop(owner, None)
        if snap is not None:
            for peer in snap.neighbors:
                self._claimed_by[peer].discard(owner)
            del self._seq[owner]

    def get(self, owner: Hashable) -> Optional[ListSnapshot]:
        return self._lists.get(owner)

    def known_neighbors(self, owner: Hashable) -> FrozenSet[Hashable]:
        snap = self._lists.get(owner)
        return snap.neighbors if snap else frozenset()

    def age(self, owner: Hashable, now: float) -> Optional[float]:
        snap = self._lists.get(owner)
        return (now - snap.received_at) if snap else None

    def owners(self) -> List[Hashable]:
        return list(self._lists.keys())

    def claimers(self, peer: Hashable) -> List[Hashable]:
        """Owners whose stored list contains ``peer``.

        Returned in ``_lists`` insertion order -- exactly the owners an
        :meth:`owners` scan filtered on membership would yield, so
        consumers switching to this index see identical iteration order.
        """
        found = self._claimed_by.get(peer)
        if not found:
            return []
        return sorted(found, key=self._seq.__getitem__)

    # ------------------------------------------------------------------
    def find_inconsistencies(self) -> List[Tuple[Hashable, Hashable]]:
        """Pairs (a, b) where a's list claims b but b's list omits a.

        Only pairs with *both* lists present are judged; the claim is
        asymmetric, so (a, b) means "a claims b as a neighbor and b's own
        list contradicts it".
        """
        bad: List[Tuple[Hashable, Hashable]] = []
        for owner, snap in self._lists.items():
            for claimed in snap.neighbors:
                other = self._lists.get(claimed)
                if other is not None and owner not in other.neighbors:
                    bad.append((owner, claimed))
        return bad


class ConsistencyTracker:
    """Per-pair strike counter behind the liar-disconnection rule.

    "If it gets too many such messages, the good peer will disconnect
    with the neighbor."

    Strikes are keyed by the unordered *pair* whose claims disagree, so a
    single stale relationship cannot aggregate blame onto a peer across
    unrelated pairs; and observing the pair consistent again forgives it
    (transient churn races self-heal, persistent lies do not).
    """

    def __init__(self, tolerance: int) -> None:
        if tolerance < 1:
            raise ConfigError("tolerance must be >= 1")
        self.tolerance = tolerance
        self._strikes: Dict[FrozenSet[Hashable], int] = {}

    @staticmethod
    def _key(a: Hashable, b: Hashable) -> FrozenSet[Hashable]:
        return frozenset((a, b))

    def strike(self, a: Hashable, b: Hashable) -> bool:
        """Record a strike against pair (a, b); True once intolerable."""
        key = self._key(a, b)
        self._strikes[key] = self._strikes.get(key, 0) + 1
        return self._strikes[key] >= self.tolerance

    def observe_consistent(self, a: Hashable, b: Hashable) -> None:
        """The pair's lists agree again: forgive accumulated strikes."""
        self._strikes.pop(self._key(a, b), None)

    def strikes(self, a: Hashable, b: Hashable) -> int:
        return self._strikes.get(self._key(a, b), 0)

    def strikes_involving(self, peer: Hashable) -> int:
        return sum(c for k, c in self._strikes.items() if peer in k)

    def clear(self, a: Hashable, b: Hashable) -> None:
        self._strikes.pop(self._key(a, b), None)


class ListExchangeProtocol:
    """Policy wrapper deciding *when* lists are (re)sent.

    Transport-agnostic: the owner supplies ``send_list(targets)`` which
    actually emits the message. The DES engine calls
    :meth:`on_timer_tick` from a PeriodicTask (periodic policy) and
    :meth:`on_membership_change` from the peer's connect/disconnect hooks
    (event-driven policy counts and emits there instead).
    """

    def __init__(
        self,
        config: DDPoliceConfig,
        send_list: Callable[[], int],
    ) -> None:
        self.config = config
        self._send_list = send_list
        self.exchanges_sent = 0

    def on_timer_tick(self) -> None:
        if self.config.exchange_policy is ExchangePolicy.PERIODIC:
            self.exchanges_sent += self._send_list()

    def on_membership_change(self) -> None:
        if self.config.exchange_policy is ExchangePolicy.EVENT_DRIVEN:
            self.exchanges_sent += self._send_list()
