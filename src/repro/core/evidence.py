"""Per-suspect evidence collection (Section 3.3).

When a peer marks a neighbor suspicious it opens an :class:`Investigation`
against it: it sends Neighbor_Traffic to the other buddy-group members and
waits up to the collection window (5 seconds) for their reports. A member
that never answers is assumed to have exchanged 0 queries with the suspect
("it just assumes that peer j sent 0 query to peer m"). When all expected
reports are in -- or the window expires -- the indicators are computed and
compared with the cut threshold.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Optional, Tuple

from repro.core.config import DDPoliceConfig
from repro.core.indicators import NeighborReport, indicators_from_reports
from repro.errors import ConfigError, ProtocolError


class InvestigationOutcome(enum.Enum):
    PENDING = "pending"
    CLEARED = "cleared"
    CONVICTED = "convicted"


@dataclass
class Investigation:
    """Evidence about one suspect, held by one observer."""

    observer: Hashable
    suspect: Hashable
    started_at: float
    expected_members: FrozenSet[Hashable]
    own_out_to_suspect: int
    own_in_from_suspect: int
    reports: Dict[Hashable, Optional[NeighborReport]] = field(default_factory=dict)
    outcome: InvestigationOutcome = InvestigationOutcome.PENDING
    g_value: Optional[float] = None
    s_value: Optional[float] = None

    def __post_init__(self) -> None:
        if self.observer == self.suspect:
            raise ConfigError("a peer cannot investigate itself")
        if self.observer in self.expected_members:
            raise ConfigError("expected_members must exclude the observer")
        if self.suspect in self.expected_members:
            raise ConfigError("expected_members must exclude the suspect")
        if self.own_out_to_suspect < 0 or self.own_in_from_suspect < 0:
            raise ConfigError("own counts must be non-negative")

    # ------------------------------------------------------------------
    def add_report(self, member: Hashable, report: NeighborReport) -> bool:
        """Record a member's report; late/unexpected members are ignored.

        Returns True if the report was accepted.
        """
        if self.outcome is not InvestigationOutcome.PENDING:
            return False
        if member not in self.expected_members:
            return False
        self.reports[member] = report
        return True

    @property
    def complete(self) -> bool:
        """All expected members have reported."""
        return set(self.reports.keys()) >= set(self.expected_members)

    @property
    def missing_members(self) -> FrozenSet[Hashable]:
        return frozenset(self.expected_members - set(self.reports.keys()))

    # ------------------------------------------------------------------
    def decide(self, config: DDPoliceConfig) -> InvestigationOutcome:
        """Compute indicators and settle the investigation.

        Missing reports become None entries -- mapped to (0,0) inside
        :func:`indicators_from_reports` when ``assume_zero_on_missing``.
        """
        if self.outcome is not InvestigationOutcome.PENDING:
            return self.outcome
        full_reports: Dict[Hashable, Optional[NeighborReport]] = dict(self.reports)
        for member in self.expected_members:
            if member not in full_reports:
                if not config.assume_zero_on_missing:
                    # Without the assume-zero rule, silence stalls the
                    # decision; treat the suspect as cleared this round.
                    self.outcome = InvestigationOutcome.CLEARED
                    return self.outcome
                full_reports[member] = None
        g, s = indicators_from_reports(
            observer=self.observer,
            own_out_to_j=self.own_out_to_suspect,
            own_in_from_j=self.own_in_from_suspect,
            reports=full_reports,
            q=config.q_threshold_qpm,
        )
        self.g_value, self.s_value = g, s
        if g > config.cut_threshold or s > config.cut_threshold:
            self.outcome = InvestigationOutcome.CONVICTED
        else:
            self.outcome = InvestigationOutcome.CLEARED
        return self.outcome

    def indicator_pair(self) -> Tuple[float, float]:
        if self.g_value is None or self.s_value is None:
            raise ProtocolError("investigation has not been decided yet")
        return self.g_value, self.s_value
