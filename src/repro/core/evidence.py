"""Per-suspect evidence collection (Section 3.3).

When a peer marks a neighbor suspicious it opens an :class:`Investigation`
against it: it sends Neighbor_Traffic to the other buddy-group members and
waits up to the collection window (5 seconds) for their reports. A member
that never answers is assumed to have exchanged 0 queries with the suspect
("it just assumes that peer j sent 0 query to peer m"). When all expected
reports are in -- or the window expires -- the indicators are computed and
compared with the cut threshold.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Optional, Tuple

from repro.core.config import DDPoliceConfig
from repro.core.indicators import NeighborReport, indicators_from_reports
from repro.errors import ConfigError, ProtocolError


class InvestigationOutcome(enum.Enum):
    PENDING = "pending"
    CLEARED = "cleared"
    CONVICTED = "convicted"


@dataclass
class Investigation:
    """Evidence about one suspect, held by one observer."""

    observer: Hashable
    suspect: Hashable
    started_at: float
    expected_members: FrozenSet[Hashable]
    own_out_to_suspect: int
    own_in_from_suspect: int
    reports: Dict[Hashable, Optional[NeighborReport]] = field(default_factory=dict)
    outcome: InvestigationOutcome = InvestigationOutcome.PENDING
    g_value: Optional[float] = None
    s_value: Optional[float] = None
    #: Collection-window extensions granted so far (quorum rule).
    window_extensions: int = 0
    #: Re-requests already sent for this investigation (retry rule).
    retries_used: int = 0
    #: Source timestamps of accepted reports, for stale-report rejection.
    report_times: Dict[Hashable, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.observer == self.suspect:
            raise ConfigError("a peer cannot investigate itself")
        if self.observer in self.expected_members:
            raise ConfigError("expected_members must exclude the observer")
        if self.suspect in self.expected_members:
            raise ConfigError("expected_members must exclude the suspect")
        if self.own_out_to_suspect < 0 or self.own_in_from_suspect < 0:
            raise ConfigError("own counts must be non-negative")

    # ------------------------------------------------------------------
    def add_report(
        self,
        member: Hashable,
        report: NeighborReport,
        *,
        timestamp: Optional[int] = None,
    ) -> bool:
        """Record a member's report; late/unexpected members are ignored.

        With a ``timestamp`` (the message's source timestamp), a report
        older than one already held from the same member is rejected --
        a delayed/reordered duplicate must not overwrite fresher
        evidence. Re-delivery of the same report (equal timestamp) is
        idempotent: it overwrites with identical data.

        Returns True if the report was accepted.
        """
        if self.outcome is not InvestigationOutcome.PENDING:
            return False
        if member not in self.expected_members:
            return False
        if timestamp is not None:
            prev = self.report_times.get(member)
            if prev is not None and timestamp < prev:
                return False
            self.report_times[member] = timestamp
        self.reports[member] = report
        return True

    @property
    def complete(self) -> bool:
        """All expected members have reported."""
        return set(self.reports.keys()) >= set(self.expected_members)

    @property
    def missing_members(self) -> FrozenSet[Hashable]:
        return frozenset(self.expected_members - set(self.reports.keys()))

    @property
    def received_fraction(self) -> float:
        """Fraction of expected members heard from (1.0 when none expected)."""
        if not self.expected_members:
            return 1.0
        return len(set(self.reports) & set(self.expected_members)) / len(
            self.expected_members
        )

    def quorum_met(self, quorum: float) -> bool:
        """True once at least ``quorum`` of the expected reports are in."""
        return self.received_fraction >= quorum

    # ------------------------------------------------------------------
    def _trace_key(self, value: Hashable):
        """Scalar form of an observer/suspect id for trace fields."""
        return getattr(value, "value", value)

    def decide(
        self,
        config: DDPoliceConfig,
        *,
        tracer=None,
        now: float = 0.0,
    ) -> InvestigationOutcome:
        """Compute indicators and settle the investigation.

        Missing reports become None entries -- mapped to (0,0) inside
        :func:`indicators_from_reports` when ``assume_zero_on_missing``.
        An optional ``tracer`` receives a ``police.decision`` record.
        """
        if self.outcome is not InvestigationOutcome.PENDING:
            return self.outcome
        full_reports: Dict[Hashable, Optional[NeighborReport]] = dict(self.reports)
        for member in self.expected_members:
            if member not in full_reports:
                if not config.assume_zero_on_missing:
                    # Without the assume-zero rule, silence stalls the
                    # decision; treat the suspect as cleared this round.
                    self.outcome = InvestigationOutcome.CLEARED
                    return self.outcome
                full_reports[member] = None
        g, s = indicators_from_reports(
            observer=self.observer,
            own_out_to_j=self.own_out_to_suspect,
            own_in_from_j=self.own_in_from_suspect,
            reports=full_reports,
            q=config.q_threshold_qpm,
        )
        self.g_value, self.s_value = g, s
        if g > config.cut_threshold or s > config.cut_threshold:
            self.outcome = InvestigationOutcome.CONVICTED
        else:
            self.outcome = InvestigationOutcome.CLEARED
        if tracer is not None:
            tracer.event(
                "police.decision",
                t=now,
                observer=self._trace_key(self.observer),
                suspect=self._trace_key(self.suspect),
                outcome=self.outcome.value,
                g=g,
                s=s,
                reports=len(self.reports),
                expected=len(self.expected_members),
            )
        return self.outcome

    def abstain(self, *, tracer=None, now: float = 0.0) -> InvestigationOutcome:
        """Settle as CLEARED without computing indicators.

        Used when the quorum rule refuses to judge on too little
        evidence (after the window extensions are exhausted). Indicators
        are NaN: no claim about the suspect's rate is being made.
        """
        if self.outcome is InvestigationOutcome.PENDING:
            self.g_value = float("nan")
            self.s_value = float("nan")
            self.outcome = InvestigationOutcome.CLEARED
            if tracer is not None:
                tracer.event(
                    "police.decision",
                    t=now,
                    observer=self._trace_key(self.observer),
                    suspect=self._trace_key(self.suspect),
                    outcome=self.outcome.value,
                    g=None,
                    s=None,
                    reason="quorum_unmet",
                    reports=len(self.reports),
                    expected=len(self.expected_members),
                )
        return self.outcome

    def indicator_pair(self) -> Tuple[float, float]:
        if self.g_value is None or self.s_value is None:
            raise ProtocolError("investigation has not been decided yet")
        return self.g_value, self.s_value
