"""Buddy groups (Section 3.1, Figure 7).

"We define peer j's r-hop Buddy Group (BGr-j) as the set of peer j's
[r-hop] neighbors. ... Depending on how many logical neighbors each peer
has, a peer could belong to multiple different BGs. A joining peer
creates its BG membership after its first neighbor list exchanging
operation. A peer pings members within the same BG periodically to make
sure that other members are online."

The evaluated scheme is DD-POLICE-1 (r = 1): BG1-j is exactly j's direct
neighbor set. The r > 1 generalization (r-hop ball minus j) is provided
because Section 3.5 motivates it; it is exercised by the extension tests
and the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Callable, FrozenSet, Hashable, Set

from repro.errors import ConfigError


@dataclass
class BuddyGroup:
    """The buddy group of one suspect peer, as known to one observer.

    ``members`` excludes the suspect itself; the observer is a member
    (it must be a direct neighbor of the suspect to police it).
    """

    suspect: Hashable
    members: FrozenSet[Hashable]
    formed_at: float = 0.0
    radius: int = 1

    def __post_init__(self) -> None:
        if self.suspect in self.members:
            raise ConfigError("suspect cannot be a member of its own buddy group")
        if self.radius < 1:
            raise ConfigError("radius must be >= 1")

    @property
    def size(self) -> int:
        return len(self.members)

    def peers_to_contact(self, observer: Hashable) -> Set[Hashable]:
        """Other members the observer exchanges Neighbor_Traffic with."""
        if observer not in self.members:
            raise ConfigError(
                f"observer {observer!r} is not in BG of {self.suspect!r}"
            )
        return set(self.members) - {observer}

    def refresh(self, members: AbstractSet[Hashable], now: float) -> "BuddyGroup":
        """New group snapshot after a neighbor-list exchange."""
        return BuddyGroup(
            suspect=self.suspect,
            members=frozenset(members) - {self.suspect},
            formed_at=now,
            radius=self.radius,
        )


def buddy_group_of(
    suspect: Hashable,
    neighbors_of: Callable[[Hashable], AbstractSet[Hashable]],
    *,
    radius: int = 1,
    now: float = 0.0,
) -> BuddyGroup:
    """Construct BGr-suspect from a neighbor oracle.

    ``neighbors_of`` returns the *known* neighbor set of a peer -- in the
    protocol this is the most recent exchanged list, which may be stale;
    staleness is exactly the source of the 2-minute-window misjudgments
    discussed in Section 3.1.

    For ``radius > 1`` the group is the r-hop ball around the suspect
    minus the suspect itself.
    """
    if radius < 1:
        raise ConfigError(f"radius must be >= 1, got {radius}")
    frontier: Set[Hashable] = set(neighbors_of(suspect))
    members: Set[Hashable] = set(frontier)
    for _ in range(radius - 1):
        nxt: Set[Hashable] = set()
        for peer in frontier:
            nxt |= set(neighbors_of(peer))
        nxt -= members
        nxt.discard(suspect)
        members |= nxt
        frontier = nxt
    members.discard(suspect)
    return BuddyGroup(
        suspect=suspect, members=frozenset(members), formed_at=now, radius=radius
    )
