"""Chord-style DHT ring with recursive lookup routing.

A minimal but real Chord (Stoica et al.) substrate:

* nodes own identifiers on a ``2^m`` ring (derived from a seeded hash of
  their index);
* each node keeps a successor list and a finger table
  (``finger[i] = successor(node_id + 2^i)``);
* lookups route *recursively* -- each hop forwards to the closest
  preceding finger -- so, like Gnutella queries, a relayed lookup does
  not reveal its originator (the anonymity property that motivates
  overlay-level defenses);
* every relayed lookup consumes processing capacity at the relay
  (token-bucket, same anchors as the unstructured substrate), so floods
  cause drops.

The routing is simulated synchronously per lookup (a DHT path is a
single O(log n) chain, unlike a flood), with per-minute per-link
counters exposed for the defense.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ConfigError, ProtocolError
from repro.overlay.capacity import TokenBucket


@dataclass(frozen=True)
class ChordConfig:
    """Ring parameters."""

    n_nodes: int = 128
    id_bits: int = 32
    successor_list: int = 4
    processing_qpm: float = 10_000.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ConfigError("need at least 2 nodes")
        if not (8 <= self.id_bits <= 64):
            raise ConfigError("id_bits must be in [8, 64]")
        if 2**self.id_bits < 4 * self.n_nodes:
            raise ConfigError("identifier space too small for the node count")
        if self.successor_list < 1:
            raise ConfigError("successor_list must be >= 1")
        if self.processing_qpm <= 0:
            raise ConfigError("processing_qpm must be positive")


@dataclass
class LookupResult:
    """Outcome of one routed lookup."""

    key: int
    origin: int  # node index
    owner: Optional[int]  # node index owning the key, None if dropped
    hops: int
    path: List[int]
    dropped_at: Optional[int] = None

    @property
    def succeeded(self) -> bool:
        return self.owner is not None


class ChordRing:
    """The ring, its routing tables, and capacity-limited relaying."""

    def __init__(self, config: ChordConfig = ChordConfig()) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self.space = 2**config.id_bits

        # Derive unique ring ids from a seeded hash of the node index.
        ids: Set[int] = set()
        self.node_id: List[int] = []
        for idx in range(config.n_nodes):
            nid = self._hash(f"node:{config.seed}:{idx}")
            while nid in ids:
                nid = (nid + 1) % self.space
            ids.add(nid)
            self.node_id.append(nid)
        # Ring order: node indices sorted by ring id.
        self.ring_order: List[int] = sorted(
            range(config.n_nodes), key=lambda i: self.node_id[i]
        )
        self._pos: Dict[int, int] = {idx: p for p, idx in enumerate(self.ring_order)}

        self.fingers: Dict[int, List[int]] = {}
        self.successors: Dict[int, List[int]] = {}
        for idx in range(config.n_nodes):
            self._build_tables(idx)

        self.processing: Dict[int, TokenBucket] = {
            idx: TokenBucket(rate_per_min=config.processing_qpm)
            for idx in range(config.n_nodes)
        }
        #: Links whose receiver refuses to relay for the sender (set by
        #: the defense). A lookup arriving over a blocked link dies.
        self.blocked: Set[Tuple[int, int]] = set()
        # Per-directed-link lookups relayed in the current minute window.
        self.link_counts: Dict[Tuple[int, int], int] = {}
        self.lookups_routed = 0
        self.lookups_dropped = 0

    # ------------------------------------------------------------------
    def _hash(self, text: str) -> int:
        digest = hashlib.sha256(text.encode()).digest()
        return int.from_bytes(digest[:8], "big") % self.space

    def key_for(self, name: str) -> int:
        """Hash an application key onto the ring."""
        return self._hash(f"key:{name}")

    # ------------------------------------------------------------------
    def _succ_of_id(self, ring_id: int) -> int:
        """Node index owning ``ring_id`` (first node at or after it)."""
        lo, hi = 0, len(self.ring_order)
        # binary search over sorted node ids
        while lo < hi:
            mid = (lo + hi) // 2
            if self.node_id[self.ring_order[mid]] < ring_id:
                lo = mid + 1
            else:
                hi = mid
        return self.ring_order[lo % len(self.ring_order)]

    def _build_tables(self, idx: int) -> None:
        nid = self.node_id[idx]
        pos = self._pos[idx]
        order = self.ring_order
        self.successors[idx] = [
            order[(pos + k) % len(order)]
            for k in range(1, self.config.successor_list + 1)
        ]
        fingers: List[int] = []
        for i in range(self.config.id_bits):
            target = (nid + (1 << i)) % self.space
            f = self._succ_of_id(target)
            if f != idx and (not fingers or fingers[-1] != f):
                fingers.append(f)
        self.fingers[idx] = fingers

    def owner_of(self, key: int) -> int:
        """Ground truth: node index responsible for ``key``."""
        return self._succ_of_id(key % self.space)

    # ------------------------------------------------------------------
    def _in_range(self, x: int, a: int, b: int) -> bool:
        """x in (a, b] on the ring."""
        if a < b:
            return a < x <= b
        return x > a or x <= b

    def closest_preceding(self, idx: int, key: int) -> Optional[int]:
        """The finger of ``idx`` closest before ``key`` (Chord routing)."""
        nid = self.node_id[idx]
        best: Optional[int] = None
        for f in self.fingers[idx]:
            fid = self.node_id[f]
            if self._in_range(fid, nid, (key - 1) % self.space):
                if best is None or self._in_range(
                    self.node_id[best], nid, fid
                ):
                    best = f
        return best if best is not None else self.successors[idx][0]

    # ------------------------------------------------------------------
    def lookup(self, origin: int, key: int, now_s: float) -> LookupResult:
        """Route one lookup recursively from ``origin`` toward ``key``.

        Every relay consumes processing at the relay node; an exhausted
        relay drops the lookup (the DDoS mechanism).
        """
        if not (0 <= origin < self.config.n_nodes):
            raise ProtocolError(f"unknown origin {origin}")
        key %= self.space
        self.lookups_routed += 1
        path = [origin]
        current = origin
        max_hops = 2 * self.config.id_bits
        for _ in range(max_hops):
            if self._succ_of_id(key) == current:
                # current itself owns the key (origin-owned keys, or the
                # wrap-around case): answer locally.
                return LookupResult(key, origin, current, len(path) - 1, path)
            nid = self.node_id[current]
            succ = self.successors[current][0]
            if self._in_range(key, nid, self.node_id[succ]):
                # the successor owns the key; it must process the request
                self._count_link(current, succ)
                if (current, succ) in self.blocked or not self.processing[
                    succ
                ].try_consume(now_s):
                    self.lookups_dropped += 1
                    return LookupResult(key, origin, None, len(path), path, succ)
                path.append(succ)
                return LookupResult(key, origin, succ, len(path) - 1, path)
            nxt = self.closest_preceding(current, key)
            if nxt == current:  # pragma: no cover - degenerate ring
                break
            self._count_link(current, nxt)
            if (current, nxt) in self.blocked or not self.processing[nxt].try_consume(
                now_s
            ):
                self.lookups_dropped += 1
                return LookupResult(key, origin, None, len(path), path, nxt)
            path.append(nxt)
            current = nxt
        self.lookups_dropped += 1
        return LookupResult(key, origin, None, len(path), path, current)

    def _count_link(self, src: int, dst: int) -> None:
        self.link_counts[(src, dst)] = self.link_counts.get((src, dst), 0) + 1

    def roll_minute(self) -> Dict[Tuple[int, int], int]:
        """Snapshot and reset the per-link minute counters."""
        snapshot = dict(self.link_counts)
        self.link_counts.clear()
        return snapshot
