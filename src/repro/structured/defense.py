"""DD-POLICE adapted to deterministic DHT routing.

The unstructured defense needs a buddy group because a flooded query
fans out to every neighbor and *forwarded* volume dwarfs issued volume.
Chord routing is deterministic and single-path: each relayed lookup
leaves on exactly one link, so a node's total outbound can exceed its
total inbound only by what it *issued* -- the Single Indicator of
Definition 2.2 with the (k-1) fan-out factor collapsed to 1.

Concretely, for a hot link (src -> dst) the detector computes::

    excess(src->dst) = lookups(src->dst) - sum_w lookups(w->src)

A good relay has ``excess ~ 0`` no matter how much attack traffic it
funnels (everything it sends was first received); an attack agent's
excess is its entire flood. The inbound counts come from src's
predecessor links -- the DHT analogue of the buddy group, shrunk to the
links that can physically feed src.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.errors import ConfigError
from repro.metrics.errors import Judgment, JudgmentLog
from repro.structured.chord import ChordRing


@dataclass(frozen=True)
class ChordPoliceConfig:
    """Detector tunables (kept deliberately parallel to DDPoliceConfig)."""

    #: Advertised legitimate per-node lookup rate (the DHT analogue of q).
    normal_rate_qpm: float = 100.0
    #: Warning level: links below this are never investigated.
    warning_threshold_qpm: float = 500.0
    #: Multiples of ``normal_rate_qpm`` of *excess* that convict.
    cut_threshold: float = 5.0
    #: Consecutive suspicious minutes before the link is cut.
    patience_minutes: int = 1

    def __post_init__(self) -> None:
        if self.normal_rate_qpm <= 0:
            raise ConfigError("normal_rate_qpm must be positive")
        if self.warning_threshold_qpm <= 0:
            raise ConfigError("warning_threshold_qpm must be positive")
        if self.cut_threshold <= 0:
            raise ConfigError("cut_threshold must be positive")
        if self.patience_minutes < 1:
            raise ConfigError("patience_minutes must be >= 1")


class ChordPolice:
    """Per-minute issued-excess detector over the ring's link counters."""

    def __init__(
        self,
        ring: ChordRing,
        config: ChordPoliceConfig = ChordPoliceConfig(),
        *,
        judgment_log: Optional[JudgmentLog] = None,
    ) -> None:
        self.ring = ring
        self.config = config
        self.judgments = judgment_log if judgment_log is not None else JudgmentLog()
        self._suspicious_streak: Dict[Tuple[int, int], int] = {}
        #: Links the defense has cut: the victim stops routing for the src.
        self.cut_links: Set[Tuple[int, int]] = set()
        self.links_cut = 0

    def step(self, minute: float) -> int:
        """Roll the ring's minute counters and judge every hot link.

        Returns the number of links cut this minute.
        """
        counts = self.ring.roll_minute()
        inbound_total: Dict[int, float] = {}
        for (src, dst), c in counts.items():
            inbound_total[dst] = inbound_total.get(dst, 0.0) + c

        convict_level = self.config.cut_threshold * self.config.normal_rate_qpm
        cut_now = 0
        hot = set()
        for (src, dst), count in counts.items():
            if count <= self.config.warning_threshold_qpm:
                continue
            # Definition 2.2, single-path form: outbound minus everything
            # the suspect received (its legitimate forwarding budget),
            # minus the advertised normal issue rate.
            excess = count - inbound_total.get(src, 0.0) - self.config.normal_rate_qpm
            if excess <= convict_level:
                continue
            hot.add((src, dst))
            streak = self._suspicious_streak.get((src, dst), 0) + 1
            self._suspicious_streak[(src, dst)] = streak
            if streak >= self.config.patience_minutes and (src, dst) not in self.cut_links:
                self.cut_links.add((src, dst))
                self.links_cut += 1
                cut_now += 1
                self.judgments.record(
                    Judgment(
                        time=minute,
                        observer=dst,
                        suspect=src,
                        g_value=excess / self.config.normal_rate_qpm,
                        s_value=float("nan"),
                        disconnected=True,
                        reason="dht_issued_excess",
                    )
                )
        # streaks reset for links that went quiet
        for link in list(self._suspicious_streak):
            if link not in hot:
                del self._suspicious_streak[link]
        self._apply_cuts()
        return cut_now

    def _apply_cuts(self) -> None:
        """Make the victims refuse the cut senders' relays.

        The receiver drops lookups arriving over a cut link instead of
        relaying them (removing the sender from routing tables would only
        make it reroute over longer successor chains, amplifying the
        flood).
        """
        self.ring.blocked |= self.cut_links

    def suspected_nodes(self) -> Set[int]:
        """Nodes with at least one cut outbound link."""
        return {src for src, _dst in self.cut_links}
