"""Lookup-flooding DDoS against the DHT.

Two modes, mirroring the unstructured analysis:

* **diffuse** -- agents look up uniformly random keys; the load spreads
  over the whole ring (the closest analogue of query flooding, though a
  DHT amplifies by only ~log n instead of ~|E|);
* **targeted** -- agents hammer a single key; Chord's determinism focuses
  the entire flood on the key's owner and the last-hop fingers around it
  (Naoumov & Ross's observation that structure *concentrates* attacks).

Lookup events are timestamped within the minute and must be routed in
global time order (token buckets refill monotonically); use
:func:`route_events` to merge attack and legitimate load.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.structured.chord import ChordRing, LookupResult

#: One lookup event: (time_s, origin node index, key).
LookupEvent = Tuple[float, int, int]


@dataclass(frozen=True)
class LookupAttackConfig:
    """Lookup-flood parameters."""

    agents: Sequence[int] = ()
    rate_qpm: float = 20_000.0
    mode: str = "diffuse"  # diffuse | targeted
    target_key: Optional[int] = None
    #: Cap on simulated events per agent-minute; above it each simulated
    #: lookup statistically stands for several real ones (extra capacity
    #: is charged along the path).
    per_agent_cap: int = 5000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate_qpm <= 0:
            raise ConfigError("rate_qpm must be positive")
        if self.mode not in ("diffuse", "targeted"):
            raise ConfigError(f"unknown attack mode {self.mode!r}")
        if self.mode == "targeted" and self.target_key is None:
            raise ConfigError("targeted mode requires target_key")
        if self.per_agent_cap < 1:
            raise ConfigError("per_agent_cap must be >= 1")


def route_events(
    ring: ChordRing,
    events: Iterable[LookupEvent],
    *,
    weight: float = 1.0,
) -> List[LookupResult]:
    """Route events in global time order.

    ``weight > 1`` means each event statistically represents ``weight``
    real lookups: the surplus capacity is charged along the path.
    """
    results: List[LookupResult] = []
    for t, origin, key in sorted(events):
        result = ring.lookup(origin, key, t)
        results.append(result)
        if weight > 1.0:
            for node in result.path[1:]:
                ring.processing[node].try_consume(t, amount=weight - 1.0)
    return results


class LookupFlooder:
    """Drives the compromised nodes' lookup floods, minute by minute."""

    def __init__(self, ring: ChordRing, config: LookupAttackConfig) -> None:
        for a in config.agents:
            if not (0 <= a < ring.config.n_nodes):
                raise ConfigError(f"agent index {a} out of range")
        self.ring = ring
        self.config = config
        self._rng = random.Random(config.seed)
        self.lookups_issued = 0

    def _next_key(self) -> int:
        if self.config.mode == "targeted":
            assert self.config.target_key is not None
            return self.config.target_key
        return self._rng.randrange(self.ring.space)

    @property
    def event_weight(self) -> float:
        count = min(int(self.config.rate_qpm), self.config.per_agent_cap)
        return self.config.rate_qpm / max(1, count)

    def events_for_minute(self, minute_start_s: float) -> List[LookupEvent]:
        """The attack's lookup events for one minute (unsorted)."""
        count = min(int(self.config.rate_qpm), self.config.per_agent_cap)
        events: List[LookupEvent] = []
        for agent in self.config.agents:
            for i in range(count):
                t = minute_start_s + 60.0 * (i + self._rng.random()) / count
                events.append((t, agent, self._next_key()))
        self.lookups_issued += len(events)
        return events

    def run_minute(self, minute_start_s: float) -> List[LookupResult]:
        """Issue and route one minute of attack lookups (no other load)."""
        return route_events(
            self.ring, self.events_for_minute(minute_start_s), weight=self.event_weight
        )
