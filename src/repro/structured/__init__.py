"""Structured-P2P extension (the paper's future work, Section 5).

"Other future work includes ... studying overlay DDoS in structured P2P
systems." This package provides a Chord-style DHT substrate, a
lookup-flooding attack, and an adaptation of DD-POLICE's rate indicators
to deterministic DHT routing:

* :mod:`~repro.structured.chord` -- identifier ring, successor lists,
  finger tables, recursive (anonymity-preserving) lookup routing with
  per-node processing capacity;
* :mod:`~repro.structured.attack` -- lookup-flood agents, either
  *diffuse* (random keys: load spreads like unstructured flooding) or
  *targeted* (one key: the victim's successor melts);
* :mod:`~repro.structured.defense` -- the DD-POLICE adaptation: because
  DHT routing is deterministic, each node knows how much traffic a
  predecessor *should* relay, so a single-link indicator suffices -- no
  buddy group needed.
"""

from repro.structured.chord import ChordConfig, ChordRing, LookupResult
from repro.structured.attack import LookupFlooder, LookupAttackConfig
from repro.structured.defense import ChordPolice, ChordPoliceConfig

__all__ = [
    "ChordConfig",
    "ChordRing",
    "LookupResult",
    "LookupFlooder",
    "LookupAttackConfig",
    "ChordPolice",
    "ChordPoliceConfig",
]
