"""Deterministic hashing for the sketch primitives.

Python's builtin ``hash()`` is salted per process for str/bytes
(PYTHONHASHSEED), which would break the repo's byte-identical
reproducibility contract the moment a sketch index depended on it.  All
sketch code therefore hashes through keyed blake2b (scalar keys) or a
splitmix64 finalizer (vectorized integer edge ids in the SoA engine).

Double hashing (Kirsch–Mitzenmacher): one 16-byte digest yields the two
64-bit seeds h1/h2, and probe ``i`` uses ``(h1 + i*h2) mod m`` -- the
standard construction for count-min rows and Bloom probes alike.
"""

from __future__ import annotations

import hashlib
from typing import Hashable, Tuple

try:  # numpy is a hard dependency of the DES engines, but keep the
    import numpy as np  # scalar paths importable without it.
except ImportError:  # pragma: no cover - image always has numpy
    np = None  # type: ignore[assignment]

_MASK64 = (1 << 64) - 1


def key_bytes(key: Hashable) -> bytes:
    """A stable, type-tagged byte encoding of a sketch key.

    Covers the key types the stores actually see -- GUID ``bytes``,
    ``int``/``PeerId`` and ``str`` -- and falls back to ``repr`` (stable
    across processes for the frozen dataclasses used as ids, unlike
    ``hash()``).
    """
    if isinstance(key, bytes):
        return b"b" + key
    if isinstance(key, (bytearray, memoryview)):
        return b"b" + bytes(key)
    if isinstance(key, bool):
        return b"o" + bytes([key])
    if isinstance(key, int):
        return b"i" + key.to_bytes(16, "little", signed=True)
    if isinstance(key, str):
        return b"s" + key.encode("utf-8")
    return b"r" + repr(key).encode("utf-8")


def hash_pair(key: Hashable, seed: int = 0) -> Tuple[int, int]:
    """(h1, h2) 64-bit double-hashing seeds for ``key``."""
    digest = hashlib.blake2b(
        key_bytes(key), digest_size=16, key=seed.to_bytes(8, "little")
    ).digest()
    return (
        int.from_bytes(digest[:8], "little"),
        int.from_bytes(digest[8:], "little") | 1,  # odd: full period mod 2^k
    )


def probe(h1: int, h2: int, i: int, modulus: int) -> int:
    """Probe ``i`` of the double-hashing sequence."""
    return ((h1 + i * h2) & _MASK64) % modulus


def mix64(values: "np.ndarray", seed: int) -> "np.ndarray":
    """Vectorized splitmix64 finalizer over a uint64 array.

    The SoA engine hashes integer edge ids by the million per wave;
    blake2b per element would dominate the kernel, while this is three
    shifts and two multiplies on the whole array.
    """
    z = values.astype(np.uint64, copy=True)
    z += np.uint64((seed * 0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15) & _MASK64)
    z ^= z >> np.uint64(30)
    z *= np.uint64(0xBF58476D1CE4E5B9)
    z ^= z >> np.uint64(27)
    z *= np.uint64(0x94D049BB133111EB)
    z ^= z >> np.uint64(31)
    return z
