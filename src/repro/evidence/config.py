"""Evidence-store selection and sketch sizing.

DD-POLICE keeps three kinds of evidence state (ROADMAP item 2):

* per-neighbor Out/In query minute counts (:mod:`repro.evidence.store`),
* the query-GUID duplicate-suppression cache in every peer
  (:mod:`repro.evidence.dedup`, ``SeenCache``),
* the 5-second Neighbor_Traffic report dedup window
  (:mod:`repro.evidence.dedup`, ``DedupWindow``).

All three are exact by default (``backend="exact"``: byte-identical to
the pre-refactor implementations) and can be switched to bounded-memory
sketches (``backend="sketch"``: count-min counters, rotating Bloom
membership) with the one knob below.  The knob lives on
:class:`repro.core.config.DDPoliceConfig` (``police.evidence.*`` dotted
paths) and on :class:`repro.overlay.network.NetworkConfig` for the
peer-side seen cache; the spec layer copies the police setting into the
network so one ``--set police.evidence.backend=sketch`` reaches every
engine.  See docs/SKETCH.md for the error model and tuning guidance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: The two selectable evidence backends.
BACKENDS = ("exact", "sketch")


@dataclass(frozen=True)
class EvidenceConfig:
    """How the evidence stores are represented in memory.

    The defaults size the sketches for the des-soa global traffic
    arrays (one count-min pair shared by the whole overlay, hashed by
    edge id); the per-peer scalar stores use the same width/depth per
    minute frame.  Memory per count-min sketch is
    ``cm_depth * cm_width * 4`` bytes (int32 cells in the SoA arrays,
    int64 in the scalar store), per Bloom generation ``bloom_bits / 8``
    bytes (two generations live at once).
    """

    #: "exact" (default; bit-identical to the pre-sketch code) or
    #: "sketch" (count-min traffic counters + rotating-Bloom dedup).
    backend: str = "exact"
    #: Count-min columns per row.  Collision mass per cell is roughly
    #: (total queries per minute) / cm_width, and estimates only ever
    #: read high -- size it so that mass stays well under the warning
    #: threshold (docs/SKETCH.md).
    cm_width: int = 2048
    #: Count-min rows (independent hash functions; estimate = row min).
    cm_depth: int = 2
    #: Bits per rotating-Bloom generation.
    bloom_bits: int = 1 << 18
    #: Hash probes per Bloom key.
    bloom_hashes: int = 4
    #: Inserts per Bloom generation before rotation (the no-false-
    #: negative window).  0 = derive from the exact cache limit at the
    #: point of use (e.g. the peer's seen-cache limit).
    bloom_rotation: int = 0

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigError(
                f"evidence.backend must be one of {BACKENDS}, "
                f"got {self.backend!r}"
            )
        if self.cm_width < 1:
            raise ConfigError(
                f"evidence.cm_width must be >= 1, got {self.cm_width}"
            )
        if self.cm_depth < 1:
            raise ConfigError(
                f"evidence.cm_depth must be >= 1, got {self.cm_depth}"
            )
        if self.bloom_bits < 8:
            raise ConfigError(
                f"evidence.bloom_bits must be >= 8, got {self.bloom_bits}"
            )
        if self.bloom_hashes < 1:
            raise ConfigError(
                f"evidence.bloom_hashes must be >= 1, got {self.bloom_hashes}"
            )
        if self.bloom_rotation < 0:
            raise ConfigError(
                f"evidence.bloom_rotation must be non-negative, "
                f"got {self.bloom_rotation}"
            )

    @property
    def sketched(self) -> bool:
        return self.backend == "sketch"
