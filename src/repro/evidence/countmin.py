"""Count-min sketch with conservative update.

The scalar workhorse behind :class:`~repro.evidence.store.
CountMinTrafficStore`: ``depth`` rows of ``width`` int64 cells, each row
indexed by an independent double-hashing probe.  ``estimate`` is the
row minimum; ``add`` uses the conservative-update rule (raise a cell
only up to ``estimate + count``), which never undercounts and tightens
the classic ``eps * N`` overcount substantially on skewed streams --
exactly the regime of a few flooding edges over mostly-quiet neighbors.

Guarantees (property-tested in tests/property/test_sketch_properties.py):

* ``estimate(k) >= true_count(k)`` always (no undercount);
* ``estimate(k) <= true_count(k) + eps * N`` with probability
  ``1 - delta`` for ``width = ceil(e / eps)``, ``depth = ceil(ln 1/delta)``,
  where ``N`` is the total mass added.

The vectorized count-min used by the SoA engine lives with its kernels
in :mod:`repro.overlay.soa_network`; this class is the reference
implementation the property tests pin both against.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.errors import ConfigError
from repro.evidence.hashing import hash_pair, probe


class CountMinSketch:
    """Fixed-memory approximate counter over arbitrary hashable keys."""

    __slots__ = ("width", "depth", "seed", "total", "_rows")

    def __init__(self, width: int, depth: int, seed: int = 0) -> None:
        if width < 1:
            raise ConfigError(f"count-min width must be >= 1, got {width}")
        if depth < 1:
            raise ConfigError(f"count-min depth must be >= 1, got {depth}")
        self.width = width
        self.depth = depth
        self.seed = seed
        #: Total mass added (the N of the eps*N error bound).
        self.total = 0
        self._rows = np.zeros((depth, width), dtype=np.int64)

    # ------------------------------------------------------------------
    def _columns(self, key: Hashable) -> list:
        h1, h2 = hash_pair(key, self.seed)
        return [probe(h1, h2, i, self.width) for i in range(self.depth)]

    def add(self, key: Hashable, count: int = 1) -> None:
        """Conservative update: never raise a cell past estimate+count."""
        if count < 0:
            raise ConfigError(f"count-min counts must be >= 0, got {count}")
        if count == 0:
            return
        cols = self._columns(key)
        rows = self._rows
        target = min(int(rows[i, c]) for i, c in enumerate(cols)) + count
        for i, c in enumerate(cols):
            if rows[i, c] < target:
                rows[i, c] = target
        self.total += count

    def estimate(self, key: Hashable) -> int:
        cols = self._columns(key)
        return min(int(self._rows[i, c]) for i, c in enumerate(cols))

    def clear(self) -> None:
        self._rows[:] = 0
        self.total = 0

    @property
    def nbytes(self) -> int:
        """Bytes of counter state (the evidence-memory accounting unit)."""
        return int(self._rows.nbytes)
