"""Pluggable duplicate-suppression state: seen caches and dedup windows.

Two dedup shapes extracted from the engines:

* :class:`SeenCache` -- the query-GUID membership cache every peer keeps
  ("a query message will be dropped if the query message has visited
  the peer before").  :class:`ExactSeenCache` is the pre-refactor LRU
  ``OrderedDict`` verbatim; :class:`BloomSeenCache` is a rotating Bloom
  filter at a fixed bit budget (no false negative within the rotation
  window; a false positive drops a non-duplicate query, the safe
  direction under flooding).
* :class:`DedupWindow` -- the Section 3.3 "don't re-send
  Neighbor_Traffic for the same suspect within 5 seconds" rule in
  ``core/police.py``.  :class:`ExactDedupWindow` reproduces the
  timestamp-dict logic bit for bit; :class:`BloomDedupWindow` rotates
  two Bloom generations on the window clock instead of keying exact
  suspect ids (a false positive suppresses one extra report, which the
  buddy-group quorum absorbs).

Callers split the old check-then-record sequence into ``should_send``
(pure) and ``record`` so the force-resend path stays expressible.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import Dict, Hashable

from repro.errors import ConfigError
from repro.evidence.bloom import RotatingBloom
from repro.evidence.config import EvidenceConfig


class SeenCache(abc.ABC):
    """Approximate-or-exact membership over recently seen keys."""

    @abc.abstractmethod
    def add(self, key: Hashable) -> None: ...

    @abc.abstractmethod
    def __contains__(self, key: Hashable) -> bool: ...

    @abc.abstractmethod
    def __len__(self) -> int: ...

    @abc.abstractmethod
    def clear(self) -> None: ...

    @abc.abstractmethod
    def evidence_bytes(self) -> int:
        """Nominal bytes of dedup state currently held."""


class ExactSeenCache(SeenCache):
    """LRU membership, identical to the old bounded ``OrderedDict``."""

    #: Nominal payload bytes per entry (16-byte GUID + table slot) --
    #: a lower bound on the real dict overhead, favoring this baseline
    #: in memory comparisons.
    ENTRY_NBYTES = 24

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ConfigError(f"seen-cache limit must be >= 1, got {limit}")
        self.limit = limit
        self._entries: "OrderedDict[Hashable, bool]" = OrderedDict()

    def add(self, key: Hashable) -> None:
        self._entries[key] = True
        while len(self._entries) > self.limit:
            self._entries.popitem(last=False)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def evidence_bytes(self) -> int:
        return len(self._entries) * self.ENTRY_NBYTES


class BloomSeenCache(SeenCache):
    """Rotating-Bloom membership at a fixed bit budget."""

    def __init__(
        self, bits: int, hashes: int, capacity: int, seed: int = 0
    ) -> None:
        self._bloom = RotatingBloom(bits, hashes, capacity, seed=seed)

    def add(self, key: Hashable) -> None:
        self._bloom.add(key)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._bloom

    def __len__(self) -> int:
        return len(self._bloom)

    def clear(self) -> None:
        self._bloom.clear()

    def evidence_bytes(self) -> int:
        return self._bloom.nbytes


class DedupWindow(abc.ABC):
    """Suppress repeat sends for the same key within a time window."""

    def __init__(self, window_s: float) -> None:
        if window_s < 0:
            raise ConfigError(
                f"dedup window must be non-negative, got {window_s}"
            )
        self.window_s = window_s

    @abc.abstractmethod
    def should_send(self, key: Hashable, now: float) -> bool:
        """True unless a send for ``key`` was recorded within the window."""

    @abc.abstractmethod
    def record(self, key: Hashable, now: float) -> None:
        """Note a send for ``key`` at ``now`` (also used by force paths)."""

    @abc.abstractmethod
    def evidence_bytes(self) -> int: ...


class ExactDedupWindow(DedupWindow):
    """The pre-refactor suspect -> last-send-timestamp dict, verbatim."""

    #: Nominal payload bytes per entry (key word + float timestamp).
    ENTRY_NBYTES = 16

    def __init__(self, window_s: float) -> None:
        super().__init__(window_s)
        self._last_sent: Dict[Hashable, float] = {}

    def should_send(self, key: Hashable, now: float) -> bool:
        last = self._last_sent.get(key)
        return last is None or now - last >= self.window_s

    def record(self, key: Hashable, now: float) -> None:
        self._last_sent[key] = now

    def evidence_bytes(self) -> int:
        return len(self._last_sent) * self.ENTRY_NBYTES


class BloomDedupWindow(DedupWindow):
    """Time-rotating two-generation Bloom over recently reported keys.

    Generations rotate every ``window_s`` of the caller's clock, and a
    key present in either generation is suppressed -- so a repeat send
    is never allowed within ``window_s`` of the recorded one (the exact
    rule's guarantee) and is allowed again after at most ``2*window_s``.
    """

    def __init__(
        self, window_s: float, bits: int, hashes: int, seed: int = 0
    ) -> None:
        super().__init__(window_s)
        # Rotation is driven by the clock, not insert count; make the
        # insert-count rotation unreachable.
        self._bloom = RotatingBloom(bits, hashes, 1 << 62, seed=seed)
        self._epoch_start = 0.0
        self._primed = False

    def _advance(self, now: float) -> None:
        if not self._primed:
            self._epoch_start = now
            self._primed = True
            return
        if self.window_s <= 0:
            return
        gap = now - self._epoch_start
        if gap >= 2 * self.window_s:
            # Both generations predate the window; no need to replay
            # every missed rotation.
            self._bloom.clear()
            self._epoch_start = now
        elif gap >= self.window_s:
            self._bloom.rotate()
            self._epoch_start += self.window_s

    def should_send(self, key: Hashable, now: float) -> bool:
        self._advance(now)
        if self.window_s <= 0:
            return True
        return key not in self._bloom

    def record(self, key: Hashable, now: float) -> None:
        self._advance(now)
        self._bloom.add(key)

    def evidence_bytes(self) -> int:
        return self._bloom.nbytes


def make_seen_cache(
    evidence: EvidenceConfig, *, limit: int, seed: int = 0
) -> SeenCache:
    """The seen cache a config selects for an exact limit of ``limit``."""
    if evidence.sketched:
        return BloomSeenCache(
            evidence.bloom_bits,
            evidence.bloom_hashes,
            capacity=evidence.bloom_rotation or limit,
            seed=seed,
        )
    return ExactSeenCache(limit)


def make_dedup_window(
    evidence: EvidenceConfig, *, window_s: float, seed: int = 0
) -> DedupWindow:
    """The report-dedup window a config selects."""
    if evidence.sketched:
        # Suspect-id cardinality is tiny next to GUID streams; a small
        # fixed filter (1 KiB per generation) keeps collisions rare.
        return BloomDedupWindow(
            window_s, bits=1 << 13, hashes=evidence.bloom_hashes, seed=seed
        )
    return ExactDedupWindow(window_s)
