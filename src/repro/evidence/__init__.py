"""Pluggable evidence-store layer for DD-POLICE (docs/SKETCH.md).

Exact (default, byte-identical to the pre-refactor engines) and
sketch-backed (count-min traffic counters, rotating-Bloom dedup)
implementations of the three evidence structures the defense keeps,
selected by :class:`EvidenceConfig` (``police.evidence.*`` /
``network.evidence.*`` dotted paths).
"""

from repro.evidence.bloom import RotatingBloom
from repro.evidence.config import BACKENDS, EvidenceConfig
from repro.evidence.countmin import CountMinSketch
from repro.evidence.dedup import (
    BloomDedupWindow,
    BloomSeenCache,
    DedupWindow,
    ExactDedupWindow,
    ExactSeenCache,
    SeenCache,
    make_dedup_window,
    make_seen_cache,
)
from repro.evidence.store import (
    CountMinTrafficStore,
    ExactTrafficStore,
    MinuteSample,
    TrafficStore,
    make_traffic_store,
)

__all__ = [
    "BACKENDS",
    "BloomDedupWindow",
    "BloomSeenCache",
    "CountMinSketch",
    "CountMinTrafficStore",
    "DedupWindow",
    "EvidenceConfig",
    "ExactDedupWindow",
    "ExactSeenCache",
    "ExactTrafficStore",
    "MinuteSample",
    "RotatingBloom",
    "SeenCache",
    "TrafficStore",
    "make_dedup_window",
    "make_seen_cache",
    "make_traffic_store",
]
