"""Rotating (two-generation) Bloom filter for bounded-memory dedup.

Membership sketches forget by rotation, not eviction: inserts land in
the *current* generation; once it has absorbed ``capacity`` inserts it
becomes the *previous* generation and a zeroed bit array takes over.
Lookups consult both, so any key among the last ``capacity`` inserts is
always found -- the no-false-negative window the query-GUID seen cache
needs (a false negative would re-flood a query; a false positive only
drops a duplicate-looking one, the safe direction for DDoS defense,
cf. PAPERS.md "Preventing DDoS using Bloom Filter: A Survey").

Bits live in a ``bytearray`` (8 bits per byte), so ``bloom_bits=2^18``
costs 32 KiB per generation.  False-positive rate after ``n`` inserts
is the textbook ``(1 - e^{-kn/m})^k`` per generation.
"""

from __future__ import annotations

from typing import Hashable

from repro.errors import ConfigError
from repro.evidence.hashing import hash_pair, probe


class RotatingBloom:
    """Approximate set membership over the last ``capacity`` inserts."""

    __slots__ = (
        "bits", "hashes", "capacity", "seed", "_cur", "_prev", "_count",
        "_rotated",
    )

    def __init__(
        self, bits: int, hashes: int, capacity: int, seed: int = 0
    ) -> None:
        if bits < 8:
            raise ConfigError(f"bloom bits must be >= 8, got {bits}")
        if hashes < 1:
            raise ConfigError(f"bloom hashes must be >= 1, got {hashes}")
        if capacity < 1:
            raise ConfigError(f"bloom capacity must be >= 1, got {capacity}")
        self.bits = bits
        self.hashes = hashes
        self.capacity = capacity
        self.seed = seed
        self._cur = bytearray((bits + 7) // 8)
        self._prev = bytearray((bits + 7) // 8)
        self._count = 0
        self._rotated = False

    # ------------------------------------------------------------------
    def _positions(self, key: Hashable) -> list:
        h1, h2 = hash_pair(key, self.seed)
        return [probe(h1, h2, i, self.bits) for i in range(self.hashes)]

    def add(self, key: Hashable) -> None:
        # Always set bits in the current generation -- even for keys
        # already present -- so a re-added key survives the next
        # rotation and the last-`capacity`-inserts window holds.
        cur = self._cur
        for pos in self._positions(key):
            cur[pos >> 3] |= 1 << (pos & 7)
        self._count += 1
        if self._count >= self.capacity:
            self.rotate()

    def rotate(self) -> None:
        """Retire the current generation (lookups still consult it)."""
        self._prev = self._cur
        self._cur = bytearray(len(self._prev))
        self._count = 0
        self._rotated = True

    def _in(self, gen: bytearray, positions: list) -> bool:
        return all(gen[pos >> 3] & (1 << (pos & 7)) for pos in positions)

    def __contains__(self, key: Hashable) -> bool:
        positions = self._positions(key)
        return self._in(self._cur, positions) or self._in(self._prev, positions)

    def clear(self) -> None:
        self._cur = bytearray(len(self._cur))
        self._prev = bytearray(len(self._prev))
        self._count = 0
        self._rotated = False

    def __len__(self) -> int:
        """Inserts guaranteed findable (current window + retained one)."""
        return self._count + (self.capacity if self._rotated else 0)

    @property
    def nbytes(self) -> int:
        """Bytes of filter state (both generations)."""
        return len(self._cur) + len(self._prev)
