"""Pluggable per-neighbor traffic evidence stores.

The :class:`TrafficStore` interface is the Section 3.2 Out_query/In_query
bookkeeping extracted from ``core/monitor.py``:

* :class:`ExactTrafficStore` -- the pre-refactor behavior, verbatim: a
  bounded deque of :class:`MinuteSample` per neighbor.  The default, and
  byte-identical to the code it replaced (property-tested against a
  frozen oracle).
* :class:`CountMinTrafficStore` -- one count-min pair (out, in) per
  retained minute, answering ``report_pair``/``suspicious_neighbors``
  within the sketch's ``eps * N`` overcount (never an undercount, so a
  flooding neighbor is never missed; the cost is possible false
  suspects, which the DD-POLICE investigation then vets).

Keys are generic hashables (PeerId in the DES, int node ids elsewhere).
The SoA engine does not use these scalar stores -- it keeps its own
vectorized count-min arrays hashed by edge id -- but both implement the
same estimate semantics (docs/SKETCH.md).
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Hashable, List, Mapping, Optional, Tuple

from repro.errors import ConfigError
from repro.evidence.config import EvidenceConfig
from repro.evidence.countmin import CountMinSketch

#: Nominal payload bytes per retained exact sample (minute, out, in as
#: machine words) -- a deliberate *lower bound* on the real allocator
#: cost of a deque of dataclasses, so exact-vs-sketch memory comparisons
#: favor the exact baseline.
SAMPLE_NBYTES = 24
#: Nominal payload bytes per tracked-neighbor key entry.
KEY_NBYTES = 8


@dataclass(frozen=True)
class MinuteSample:
    """Counts for one completed minute window for one neighbor."""

    minute: int
    out_queries: int
    in_queries: int


class TrafficStore(abc.ABC):
    """Evidence backing for one peer's TrafficMonitor."""

    history_minutes: int

    @abc.abstractmethod
    def record_window(
        self,
        minute: int,
        out_counts: Mapping[Hashable, int],
        in_counts: Mapping[Hashable, int],
    ) -> None:
        """Ingest one completed minute window's snapshots."""

    @abc.abstractmethod
    def forget(self, neighbor: Hashable) -> None:
        """Drop history for a departed neighbor."""

    @abc.abstractmethod
    def latest(self, neighbor: Hashable) -> Optional[MinuteSample]:
        """The most recent retained sample (estimate) for ``neighbor``."""

    @abc.abstractmethod
    def suspicious_neighbors(self, warning_threshold_qpm: float) -> List[Hashable]:
        """Neighbors whose last-minute In_query crossed the threshold."""

    @abc.abstractmethod
    def history(self, neighbor: Hashable) -> List[MinuteSample]:
        """All retained samples (estimates) for ``neighbor``, oldest first."""

    @abc.abstractmethod
    def tracked_neighbors(self) -> List[Hashable]:
        """Neighbors with any retained evidence."""

    @abc.abstractmethod
    def evidence_bytes(self) -> int:
        """Nominal bytes of evidence state currently held."""

    # -- shared derived queries ----------------------------------------
    def out_query(self, neighbor: Hashable) -> int:
        """Out_query(neighbor): queries we sent to it in the last minute."""
        sample = self.latest(neighbor)
        return sample.out_queries if sample else 0

    def in_query(self, neighbor: Hashable) -> int:
        """In_query(neighbor): queries it sent us in the last minute."""
        sample = self.latest(neighbor)
        return sample.in_queries if sample else 0

    def report_pair(self, neighbor: Hashable) -> Tuple[int, int]:
        """(Out_query, In_query) -- the last two Table 1 fields."""
        return self.out_query(neighbor), self.in_query(neighbor)


class ExactTrafficStore(TrafficStore):
    """Bounded per-neighbor deques of exact minute samples (default)."""

    def __init__(self, history_minutes: int = 10) -> None:
        if history_minutes < 1:
            raise ConfigError("history_minutes must be >= 1")
        self.history_minutes = history_minutes
        self._history: Dict[Hashable, Deque[MinuteSample]] = {}

    def record_window(
        self,
        minute: int,
        out_counts: Mapping[Hashable, int],
        in_counts: Mapping[Hashable, int],
    ) -> None:
        keys = set(out_counts) | set(in_counts)
        for key in keys:
            sample = MinuteSample(
                minute=minute,
                out_queries=int(out_counts.get(key, 0)),
                in_queries=int(in_counts.get(key, 0)),
            )
            dq = self._history.setdefault(key, deque(maxlen=self.history_minutes))
            dq.append(sample)

    def forget(self, neighbor: Hashable) -> None:
        self._history.pop(neighbor, None)

    def latest(self, neighbor: Hashable) -> Optional[MinuteSample]:
        dq = self._history.get(neighbor)
        return dq[-1] if dq else None

    def suspicious_neighbors(self, warning_threshold_qpm: float) -> List[Hashable]:
        result = []
        for key, dq in self._history.items():
            if dq and dq[-1].in_queries > warning_threshold_qpm:
                result.append(key)
        return result

    def history(self, neighbor: Hashable) -> List[MinuteSample]:
        return list(self._history.get(neighbor, ()))

    def tracked_neighbors(self) -> List[Hashable]:
        return list(self._history.keys())

    def evidence_bytes(self) -> int:
        samples = sum(len(dq) for dq in self._history.values())
        return samples * SAMPLE_NBYTES + len(self._history) * KEY_NBYTES


class CountMinTrafficStore(TrafficStore):
    """Per-minute count-min pairs at a fixed memory budget.

    One ``(minute, out_sketch, in_sketch)`` frame per retained minute;
    neighbor identity is kept only as the key set needed to answer
    ``suspicious_neighbors`` (the sketches themselves cannot enumerate
    keys).  Semantics vs exact: estimates never undercount; a neighbor
    silent for ``history_minutes`` global rollovers ages out of the
    frame ring even if it was the only one recorded (the exact store
    retains per-neighbor samples until ``forget``), which only ever
    *clears* stale suspicion.
    """

    def __init__(
        self,
        history_minutes: int = 10,
        *,
        width: int,
        depth: int,
        seed: int = 0,
    ) -> None:
        if history_minutes < 1:
            raise ConfigError("history_minutes must be >= 1")
        self.history_minutes = history_minutes
        self.width = width
        self.depth = depth
        self.seed = seed
        self._frames: Deque[Tuple[int, CountMinSketch, CountMinSketch]] = deque(
            maxlen=history_minutes
        )
        #: neighbor -> minute of its most recent recorded window.
        self._tracked: Dict[Hashable, int] = {}

    # ------------------------------------------------------------------
    def _frame_for(
        self, minute: int
    ) -> Optional[Tuple[int, CountMinSketch, CountMinSketch]]:
        for frame in reversed(self._frames):
            if frame[0] == minute:
                return frame
        return None

    def record_window(
        self,
        minute: int,
        out_counts: Mapping[Hashable, int],
        in_counts: Mapping[Hashable, int],
    ) -> None:
        frame = self._frames[-1] if self._frames else None
        if frame is None or frame[0] != minute:
            frame = (
                minute,
                CountMinSketch(self.width, self.depth, seed=self.seed),
                CountMinSketch(self.width, self.depth, seed=self.seed + 1),
            )
            self._frames.append(frame)
        _, out_sk, in_sk = frame
        for key in set(out_counts) | set(in_counts):
            self._tracked[key] = minute
            out = int(out_counts.get(key, 0))
            if out:
                out_sk.add(key, out)
            inc = int(in_counts.get(key, 0))
            if inc:
                in_sk.add(key, inc)

    def forget(self, neighbor: Hashable) -> None:
        self._tracked.pop(neighbor, None)

    def latest(self, neighbor: Hashable) -> Optional[MinuteSample]:
        minute = self._tracked.get(neighbor)
        if minute is None:
            return None
        frame = self._frame_for(minute)
        if frame is None:  # aged out of the frame ring
            return None
        _, out_sk, in_sk = frame
        return MinuteSample(
            minute=minute,
            out_queries=out_sk.estimate(neighbor),
            in_queries=in_sk.estimate(neighbor),
        )

    def suspicious_neighbors(self, warning_threshold_qpm: float) -> List[Hashable]:
        result = []
        for key in self._tracked:
            sample = self.latest(key)
            if sample is not None and sample.in_queries > warning_threshold_qpm:
                result.append(key)
        return result

    def history(self, neighbor: Hashable) -> List[MinuteSample]:
        if neighbor not in self._tracked:
            return []
        last = self._tracked[neighbor]
        return [
            MinuteSample(
                minute=minute,
                out_queries=out_sk.estimate(neighbor),
                in_queries=in_sk.estimate(neighbor),
            )
            for minute, out_sk, in_sk in self._frames
            if minute <= last
        ]

    def tracked_neighbors(self) -> List[Hashable]:
        return list(self._tracked.keys())

    def evidence_bytes(self) -> int:
        sketches = sum(o.nbytes + i.nbytes for _, o, i in self._frames)
        return sketches + len(self._tracked) * KEY_NBYTES


def make_traffic_store(
    evidence: EvidenceConfig,
    *,
    history_minutes: int = 10,
    seed: int = 0,
) -> TrafficStore:
    """The store a config selects (exact unless ``backend="sketch"``)."""
    if evidence.sketched:
        return CountMinTrafficStore(
            history_minutes,
            width=evidence.cm_width,
            depth=evidence.cm_depth,
            seed=seed,
        )
    return ExactTrafficStore(history_minutes)
