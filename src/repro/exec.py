"""Deterministic task-based parallel experiment executor.

The paper's methodology is an embarrassingly parallel grid -- 100
topologies, agent counts 10..200, multi-trial averaging -- so every sweep
in :mod:`repro.experiments` is expressible as ``pmap(fn, tasks)`` over
*pure* tasks: each task carries its own config (including a seed derived
with :func:`repro.simkit.rng.derive_seed`), touches no shared mutable
state, and returns a picklable value.

Design rules that keep parallel runs bit-identical to serial ones:

* **Determinism lives in the tasks, never in the schedule.** Each task's
  randomness comes only from seeds embedded in the task payload, so the
  result of task *i* cannot depend on which worker ran it or when.
* **Ordered reassembly.** ``pmap`` always returns ``[fn(t) for t in
  tasks]`` in task order, regardless of completion order.
* **Serial in-process fallback.** ``workers=1`` (the default) runs the
  plain list comprehension in the calling process: no subprocesses, no
  pickling, byte-identical to the pre-executor code path.
* **Typed failure surfacing.** A dead worker raises
  :class:`~repro.errors.WorkerCrashError`; a deadline overrun raises
  :class:`~repro.errors.TaskTimeoutError`; an exception *inside* ``fn``
  is re-raised as-is (same behavior as the serial path).

Worker processes use the ``spawn`` start method: children re-import the
module that defines ``fn`` instead of forking the parent's (possibly
inconsistent) heap, which is the only start method that is safe on every
platform and under threaded callers. Consequently ``fn`` and every task
must be picklable -- module-level functions and frozen dataclasses, not
closures. Pools are cached per worker count so repeated ``pmap`` calls
amortize interpreter startup.
"""

from __future__ import annotations

import atexit
import os
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, ExecError, TaskTimeoutError, WorkerCrashError
from repro.obs.metrics import global_registry

#: Environment variable holding the default worker count for sweeps that
#: do not pass ``workers`` explicitly (benchmarks, CLI).
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit argument, else ``$REPRO_WORKERS``,
    else 1 (serial).

    ``workers=0`` / ``REPRO_WORKERS=0`` means "one per CPU".
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ConfigError(f"{WORKERS_ENV} must be an integer, got {raw!r}")
    if workers < 0:
        raise ConfigError("workers must be >= 0")
    if workers == 0:
        workers = os.cpu_count() or 1
    return workers


@dataclass
class ExecStats:
    """Timing/progress record of one :func:`pmap` call."""

    tasks: int = 0
    workers: int = 1
    chunks: int = 0
    wall_s: float = 0.0
    #: Per-chunk (first_task_index, task_count, elapsed_s) in completion
    #: order -- elapsed is measured in the parent, so for the serial path
    #: it is the task's own runtime and for the parallel path it includes
    #: queueing.
    chunk_timings: List[Tuple[int, int, float]] = field(default_factory=list)
    #: Progress-hook exceptions swallowed during this call (hooks are
    #: observers; a broken one must not kill the sweep).
    hook_errors: int = 0
    #: With ``profile=True``: one report dict per chunk, in completion
    #: order, shipped back from the worker ({"first_task", "tasks",
    #: "wall_s", and -- under cProfile -- "profile_top"}).
    worker_profiles: List[Dict[str, Any]] = field(default_factory=list)


ProgressHook = Callable[[int, int], None]


class _SafeProgress:
    """Wraps a progress hook so its exceptions cannot kill the run.

    The first failure emits one :class:`RuntimeWarning`; every failure
    increments both ``stats.hook_errors`` and the process-wide
    ``exec.progress_hook_errors`` counter.
    """

    def __init__(self, hook: ProgressHook, stats: ExecStats) -> None:
        self._hook = hook
        self._stats = stats
        self._warned = False

    def __call__(self, done: int, total: int) -> None:
        try:
            self._hook(done, total)
        except Exception as exc:
            self._stats.hook_errors += 1
            global_registry().counter("exec.progress_hook_errors").inc()
            if not self._warned:
                self._warned = True
                warnings.warn(
                    f"pmap progress hook raised {type(exc).__name__}: {exc}; "
                    "suppressing further hook errors for this call",
                    RuntimeWarning,
                    stacklevel=3,
                )


def _chunk_bounds(n_tasks: int, chunk_size: int) -> List[Tuple[int, int]]:
    return [(lo, min(lo + chunk_size, n_tasks)) for lo in range(0, n_tasks, chunk_size)]


def _run_chunk(fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
    """Worker-side body: run one chunk serially, preserving order."""
    return [fn(task) for task in tasks]


def _run_chunk_profiled(
    fn: Callable[[Any], Any], tasks: Sequence[Any], first_task: int, top: int
) -> Tuple[List[Any], Dict[str, Any]]:
    """Worker-side body under ``profile=True``: results + a profile report.

    cProfile runs around the whole chunk and the top-``top``
    cumulative-time rows travel back as text, so the parent can show
    where worker wall-time went without any shared state.
    """
    from repro.obs.profile import Profiler

    profiler = Profiler(cprofile=True, top=top)
    with profiler.scope("exec.chunk", first_task=first_task, tasks=len(tasks)):
        results = [fn(task) for task in tasks]
    return results, profiler.reports[0]


# ---------------------------------------------------------------------------
# pool cache
# ---------------------------------------------------------------------------

_POOLS: Dict[int, ProcessPoolExecutor] = {}


def _pool(workers: int) -> ProcessPoolExecutor:
    pool = _POOLS.get(workers)
    if pool is None:
        import multiprocessing

        pool = ProcessPoolExecutor(
            max_workers=workers, mp_context=multiprocessing.get_context("spawn")
        )
        _POOLS[workers] = pool
    return pool


def _discard_pool(workers: int) -> None:
    pool = _POOLS.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> None:
    """Shut down every cached worker pool (called automatically at exit)."""
    for workers in list(_POOLS):
        _discard_pool(workers)


atexit.register(shutdown_pools)


# ---------------------------------------------------------------------------
# pmap
# ---------------------------------------------------------------------------

def pmap(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    *,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    timeout_s: Optional[float] = None,
    on_progress: Optional[ProgressHook] = None,
    stats: Optional[ExecStats] = None,
    profile: bool = False,
    profile_top: int = 20,
) -> List[Any]:
    """Map ``fn`` over ``tasks``, optionally on a process pool.

    Parameters
    ----------
    fn:
        A *pure*, picklable (module-level) function of one task.
    tasks:
        Task payloads; each must be picklable when ``workers > 1``.
    workers:
        Process count (see :func:`resolve_workers`); 1 = serial in-process.
    chunk_size:
        Tasks per dispatch unit. Defaults to roughly four chunks per
        worker, so stragglers rebalance while per-chunk IPC stays
        amortized.
    timeout_s:
        Overall deadline; on expiry pending work is cancelled and
        :class:`~repro.errors.TaskTimeoutError` is raised.
    on_progress:
        ``on_progress(done, total)`` after each task (serial) or chunk
        (parallel) completes, in the parent process. Exceptions raised by
        the hook are swallowed (counted in ``stats.hook_errors`` and the
        global ``exec.progress_hook_errors`` counter, one warning per
        call) -- a broken observer must not kill the sweep.
    stats:
        Optional :class:`ExecStats` to fill with timing details.
    profile:
        Run cProfile around each chunk (in the worker) and ship the
        top-``profile_top`` cumulative rows back in
        ``stats.worker_profiles``. Opt-in: adds real overhead.

    Returns ``[fn(t) for t in tasks]`` in task order.
    """
    workers = resolve_workers(workers)
    tasks = list(tasks)
    total = len(tasks)
    stats = stats if stats is not None else ExecStats()
    stats.tasks = total
    stats.workers = workers
    if on_progress is not None:
        on_progress = _SafeProgress(on_progress, stats)
    started = time.perf_counter()

    if workers == 1 or total <= 1:
        # Serial fallback: identical to the historical inline loop -- the
        # deadline is best-effort (checked between tasks, never killing a
        # running one, so a single long task behaves exactly as before).
        results: List[Any] = []
        stats.chunks = total
        profiler = None
        if profile and total:
            from repro.obs.profile import Profiler

            profiler = Profiler(cprofile=True, top=profile_top)
            profiler_scope = profiler.scope(
                "exec.chunk", first_task=0, tasks=total
            )
            profiler_scope.__enter__()
        try:
            for index, task in enumerate(tasks):
                if timeout_s is not None and time.perf_counter() - started > timeout_s:
                    raise TaskTimeoutError(
                        f"serial pmap exceeded {timeout_s:g}s after {index}/{total} tasks"
                    )
                t0 = time.perf_counter()
                results.append(fn(task))
                stats.chunk_timings.append((index, 1, time.perf_counter() - t0))
                if on_progress is not None:
                    on_progress(index + 1, total)
        finally:
            if profiler is not None:
                profiler_scope.__exit__(None, None, None)
                stats.worker_profiles.extend(profiler.reports)
        stats.wall_s = time.perf_counter() - started
        return results

    if chunk_size is None:
        chunk_size = max(1, total // (workers * 4))
    if chunk_size < 1:
        raise ConfigError("chunk_size must be >= 1")

    bounds = _chunk_bounds(total, chunk_size)
    stats.chunks = len(bounds)
    pool = _pool(workers)
    slots: List[Optional[List[Any]]] = [None] * total
    try:
        if profile:
            future_bounds = {
                pool.submit(
                    _run_chunk_profiled, fn, tasks[lo:hi], lo, profile_top
                ): (lo, hi)
                for lo, hi in bounds
            }
        else:
            future_bounds = {
                pool.submit(_run_chunk, fn, tasks[lo:hi]): (lo, hi)
                for lo, hi in bounds
            }
    except BrokenProcessPool as exc:  # pool died before accepting work
        _discard_pool(workers)
        raise WorkerCrashError(f"worker pool broken at submit: {exc}") from exc

    done_tasks = 0
    pending = set(future_bounds)
    try:
        while pending:
            remaining: Optional[float] = None
            if timeout_s is not None:
                remaining = timeout_s - (time.perf_counter() - started)
                if remaining <= 0:
                    raise TaskTimeoutError(
                        f"pmap exceeded {timeout_s:g}s with "
                        f"{done_tasks}/{total} tasks done"
                    )
            finished, pending = wait(
                pending, timeout=remaining, return_when=FIRST_COMPLETED
            )
            if not finished:
                raise TaskTimeoutError(
                    f"pmap exceeded {timeout_s:g}s with "
                    f"{done_tasks}/{total} tasks done"
                )
            for future in finished:
                lo, hi = future_bounds[future]
                try:
                    chunk_results = future.result()
                except BrokenProcessPool as exc:
                    raise WorkerCrashError(
                        f"worker crashed while running tasks [{lo}, {hi}): {exc}"
                    ) from exc
                if profile:
                    chunk_results, report = chunk_results
                    stats.worker_profiles.append(report)
                if len(chunk_results) != hi - lo:
                    raise ExecError(
                        f"chunk [{lo}, {hi}) returned {len(chunk_results)} results"
                    )
                slots[lo:hi] = chunk_results
                done_tasks += hi - lo
                stats.chunk_timings.append(
                    (lo, hi - lo, time.perf_counter() - started)
                )
                if on_progress is not None:
                    on_progress(done_tasks, total)
    except (WorkerCrashError, TaskTimeoutError):
        for future in future_bounds:
            future.cancel()
        _discard_pool(workers)
        raise
    except BaseException:
        for future in future_bounds:
            future.cancel()
        raise

    stats.wall_s = time.perf_counter() - started
    return list(slots)
