"""Query-flood load balancing (Daswani & Garcia-Molina, CCS'02).

The paper's closest related work ([21]): instead of identifying
attackers, each peer gives every neighbor a *fair share* of its limited
forwarding capacity. "It is basically a survival approach: it does not
require servers to distinguish attack queries from normal queries, but
maintain a fair load distribution ... However, this approach could be
less effective when the number of DDoS agents is getting large."

Implementation: a per-peer forwarding budget of ``capacity_qpm`` is split
per incoming neighbor each minute (fractional drop beyond the share).
Attached as a ``forward_filter`` on the peer so it composes with the rest
of the message pipeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.overlay.ids import PeerId
from repro.overlay.message import Query
from repro.overlay.network import OverlayNetwork
from repro.overlay.peer import Peer


@dataclass(frozen=True)
class LoadBalancingConfig:
    """Fair-share forwarding parameters."""

    capacity_qpm: float = 10_000.0
    #: Reserve headroom so shares sum below capacity (stability margin).
    utilization_target: float = 0.95

    def __post_init__(self) -> None:
        if self.capacity_qpm <= 0:
            raise ConfigError("capacity_qpm must be positive")
        if not (0 < self.utilization_target <= 1):
            raise ConfigError("utilization_target must be in (0, 1]")


class LoadBalancingDefense:
    """Per-peer fair-share forwarding limiter."""

    def __init__(
        self,
        network: OverlayNetwork,
        peer: Peer,
        config: LoadBalancingConfig = LoadBalancingConfig(),
        *,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.network = network
        self.peer = peer
        self.config = config
        self._rng = rng or random.Random(peer.id.value ^ 0x5BD1)
        # Per-source tokens consumed this minute.
        self._used_this_minute: Dict[PeerId, float] = {}
        self.queries_shed = 0
        peer.query_taps.append(self._account)
        peer.forward_filters.append(self._filter)
        network.minute_listeners.append(self._on_minute)
        self._current_source: Optional[PeerId] = None

    # The tap runs before processing and tells us which neighbor the
    # in-flight query came from; the filter then applies that source's
    # fair share.
    def _account(self, src: PeerId, query: Query) -> None:
        self._current_source = src

    def _fair_share_qpm(self) -> float:
        k = max(1, len(self.peer.neighbors))
        return self.config.capacity_qpm * self.config.utilization_target / k

    def _filter(self, query: Query, targets: List[PeerId]) -> List[PeerId]:
        src = self._current_source
        if src is None:
            return targets
        share = self._fair_share_qpm()
        used = self._used_this_minute.get(src, 0.0)
        if used >= share:
            self.queries_shed += 1
            return []  # shed: this source exhausted its share
        self._used_this_minute[src] = used + 1.0
        return targets

    def _on_minute(self, minute: int, now: float) -> None:
        self._used_this_minute.clear()


def deploy_load_balancing(
    network: OverlayNetwork, config: LoadBalancingConfig = LoadBalancingConfig()
) -> Dict[PeerId, LoadBalancingDefense]:
    """Attach fair-share forwarding to every peer."""
    return {
        pid: LoadBalancingDefense(network, peer, config)
        for pid, peer in network.peers.items()
    }
