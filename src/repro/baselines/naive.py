"""Naive rate-cutoff defense.

Disconnect any neighbor whose last-minute incoming query count exceeds a
fixed threshold -- no buddy-group consultation, no issued-vs-forwarded
discrimination. This is the strawman of Section 2.1 / Figure 1: a good
peer that merely *forwards* an attacker's flood looks identical to the
attacker and gets cut, which is exactly the failure mode DD-POLICE's
indicators avoid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigError
from repro.metrics.errors import Judgment, JudgmentLog
from repro.overlay.ids import PeerId
from repro.overlay.message import Bye
from repro.overlay.network import OverlayNetwork
from repro.overlay.peer import Peer


@dataclass(frozen=True)
class NaiveCutoffConfig:
    """Threshold for the naive defense (same scale as DD-POLICE's
    warning threshold so comparisons are apples-to-apples)."""

    cutoff_qpm: float = 500.0

    def __post_init__(self) -> None:
        if self.cutoff_qpm <= 0:
            raise ConfigError("cutoff_qpm must be positive")


class NaiveCutoffDefense:
    """Per-peer naive defense for the message-level overlay."""

    def __init__(
        self,
        network: OverlayNetwork,
        peer: Peer,
        config: NaiveCutoffConfig = NaiveCutoffConfig(),
        *,
        judgment_log: Optional[JudgmentLog] = None,
    ) -> None:
        self.network = network
        self.peer = peer
        self.config = config
        self.judgments = judgment_log if judgment_log is not None else JudgmentLog()
        self.disconnects_issued = 0
        network.minute_listeners.append(self._on_minute)

    def _on_minute(self, minute: int, now: float) -> None:
        if not self.peer.online:
            return
        for neighbor, count in list(self.peer.last_minute_in.items()):
            if count > self.config.cutoff_qpm and neighbor in self.peer.neighbors:
                self.disconnects_issued += 1
                self.judgments.record(
                    Judgment(
                        time=now,
                        observer=self.peer.id,
                        suspect=neighbor,
                        g_value=float(count) / self.config.cutoff_qpm,
                        s_value=float("nan"),
                        disconnected=True,
                        reason="naive_cutoff",
                    )
                )
                self.network.disconnect(
                    self.peer.id, neighbor, reason_code=Bye.REASON_NAIVE_RATE_LIMIT
                )


def deploy_naive(
    network: OverlayNetwork, config: NaiveCutoffConfig = NaiveCutoffConfig()
) -> Dict[PeerId, NaiveCutoffDefense]:
    """Attach the naive defense to every peer; shared judgment log."""
    log = JudgmentLog()
    return {
        pid: NaiveCutoffDefense(network, peer, config, judgment_log=log)
        for pid, peer in network.peers.items()
    }
