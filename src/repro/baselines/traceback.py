"""Probabilistic packet-marking (PPM) traceback baseline.

IP-level PPM (Savage et al.; analyzed by Barak-Pelleg et al.,
"Reconstructing DDoS Attack Graphs using Probabilistic Packet Marking")
has routers mark forwarded packets with probability ``p``; the victim
reconstructs the attack path once enough marks arrive, with a
time-to-identify governed by coupon collection: roughly
``marks_to_identify / (p * rate)`` time units per edge.

The overlay adaptation collapses the path to its last hop: every peer is
its own "victim router" and accumulates, per neighbor and per minute, a
``Binomial(received_queries, p)`` sample of marked queries. When the
marks from one neighbor within the sliding window reach
``marks_to_identify``, that upstream edge is declared part of the attack
graph and cut. This keeps PPM's two defining properties -- detection is
*probabilistic* (a sampled fraction of traffic is evidence) and latency
scales inversely with rate and ``p`` -- and also its defining weakness
at the overlay layer: marks identify the upstream *edge*, not the query
*originator*, so a good peer forwarding an attacker's flood is
indistinguishable from the attacker (the same forwarder-blindness the
paper's Section 2.1 strawman suffers, which DD-POLICE's buddy-group
evidence exists to fix). The ``robustness-matrix`` spec quantifies both
sides: time-to-identify vs DD-POLICE's investigation latency, and the
false-suspect cost of rate-only evidence.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.metrics.errors import Judgment, JudgmentLog
from repro.overlay.ids import PeerId
from repro.overlay.message import Bye
from repro.overlay.network import OverlayNetwork
from repro.overlay.peer import Peer


@dataclass(frozen=True)
class TracebackConfig:
    """PPM parameters, translated to the overlay's minute granularity."""

    #: Marking probability ``p``: fraction of received queries that carry
    #: a usable mark.
    mark_prob: float = 0.04
    #: Marks from one neighbor (within the window) that convict the edge.
    marks_to_identify: int = 40
    #: Sliding evidence window, in minutes.
    window_minutes: int = 3

    def __post_init__(self) -> None:
        if not (0.0 < self.mark_prob <= 1.0):
            raise ConfigError("mark_prob must be in (0, 1]")
        if self.marks_to_identify < 1:
            raise ConfigError("marks_to_identify must be >= 1")
        if self.window_minutes < 1:
            raise ConfigError("window_minutes must be >= 1")


class TracebackDefense:
    """Per-peer PPM mark accumulator over the incoming edges."""

    def __init__(
        self,
        network: OverlayNetwork,
        peer: Peer,
        config: TracebackConfig = TracebackConfig(),
        *,
        judgment_log: Optional[JudgmentLog] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.network = network
        self.peer = peer
        self.config = config
        self.judgments = judgment_log if judgment_log is not None else JudgmentLog()
        self._rng = rng or random.Random(peer.id.value)
        #: Per-neighbor (minute, marks) samples inside the window.
        self._marks: Dict[PeerId, Deque[Tuple[int, int]]] = {}
        self.disconnects_issued = 0
        network.minute_listeners.append(self._on_minute)

    def _sample_marks(self, count: int) -> int:
        """Binomial(count, p) via explicit Bernoulli draws (seeded rng)."""
        p = self.config.mark_prob
        marks = 0
        for _ in range(count):
            if self._rng.random() < p:
                marks += 1
        return marks

    def _on_minute(self, minute: int, now: float) -> None:
        if not self.peer.online:
            return
        horizon = minute - self.config.window_minutes
        for neighbor, count in sorted(
            self.peer.last_minute_in.items(), key=lambda kv: kv[0].value
        ):
            if neighbor not in self.peer.neighbors:
                continue
            window = self._marks.setdefault(neighbor, deque())
            window.append((minute, self._sample_marks(count)))
            while window and window[0][0] <= horizon:
                window.popleft()
            total = sum(m for _, m in window)
            if total >= self.config.marks_to_identify:
                self.disconnects_issued += 1
                self.judgments.record(
                    Judgment(
                        time=now,
                        observer=self.peer.id,
                        suspect=neighbor,
                        g_value=float(total),
                        s_value=float("nan"),
                        disconnected=True,
                        reason="traceback",
                    )
                )
                self.network.disconnect(
                    self.peer.id, neighbor, reason_code=Bye.REASON_TRACEBACK
                )
                self._marks.pop(neighbor, None)


def deploy_traceback(
    network: OverlayNetwork,
    config: TracebackConfig = TracebackConfig(),
    *,
    rng: Optional[random.Random] = None,
) -> Dict[PeerId, TracebackDefense]:
    """Attach the PPM baseline to every peer; shared judgment log."""
    log = JudgmentLog()
    rng = rng or random.Random(0)
    return {
        pid: TracebackDefense(
            network,
            peer,
            config,
            judgment_log=log,
            rng=random.Random(rng.getrandbits(32)),
        )
        for pid, peer in network.peers.items()
    }
