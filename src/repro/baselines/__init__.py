"""Baseline defenses DD-POLICE is compared against.

* :mod:`~repro.baselines.naive` -- the naive rate cutoff the paper argues
  is dangerous ("Disconnecting all the peers who send out a large number
  of queries is dangerous in that a large number of good peers could be
  forwarding queries for bad peers", Section 2.1).
* :mod:`~repro.baselines.load_balance` -- the Daswani & Garcia-Molina
  query-flood load-balancing defense ([21], CCS'02), the paper's "most
  related work": fair-share forwarding without identifying attackers.
* :mod:`~repro.baselines.traceback` -- probabilistic packet-marking
  traceback (Savage et al. / Barak-Pelleg et al.) adapted to the
  overlay's minute granularity: sampled mark accumulation per incoming
  edge, with PPM's coupon-collection time-to-identify.
"""

from repro.baselines.naive import NaiveCutoffDefense, NaiveCutoffConfig
from repro.baselines.load_balance import LoadBalancingDefense, LoadBalancingConfig
from repro.baselines.traceback import TracebackConfig, TracebackDefense, deploy_traceback

__all__ = [
    "NaiveCutoffDefense",
    "NaiveCutoffConfig",
    "LoadBalancingDefense",
    "LoadBalancingConfig",
    "TracebackConfig",
    "TracebackDefense",
    "deploy_traceback",
]
