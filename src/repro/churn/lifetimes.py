"""Session-lifetime distributions.

The paper cites Saroiu et al. for the lifetime shape (heavy-tailed; we use
lognormal, the standard fit for P2P session times) with mean 10 minutes
and "variance ... half of the value of the mean". Taken literally that is
Var = 5 min^2 (std ~2.2 min); many readings intend std = mean/2 = 5 min.
Both are supported via ``variance_is_std_fraction``; the default follows
the literal reading of the text.

Exponential and deterministic families are included for sensitivity
studies and tests.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class LifetimeConfig:
    """Parameters for :class:`LifetimeDistribution`.

    ``mean_s`` / ``variance`` are expressed in seconds (and seconds^2).
    With ``variance=None`` the paper's rule is applied: variance equals
    half the mean (in minutes, converted consistently).
    """

    family: str = "lognormal"  # lognormal | exponential | fixed
    mean_s: float = 600.0
    variance: float = None  # type: ignore[assignment]
    min_lifetime_s: float = 1.0

    def __post_init__(self) -> None:
        if self.family not in ("lognormal", "exponential", "fixed"):
            raise ConfigError(f"unknown lifetime family {self.family!r}")
        if self.mean_s <= 0:
            raise ConfigError(f"mean_s must be positive, got {self.mean_s}")
        if self.min_lifetime_s < 0:
            raise ConfigError("min_lifetime_s must be non-negative")
        if self.variance is None:
            # Paper: variance = mean/2, stated in minutes; convert:
            # Var[minutes^2] = (mean_minutes / 2)  ->  seconds^2 scale.
            mean_min = self.mean_s / 60.0
            var_min2 = mean_min / 2.0
            object.__setattr__(self, "variance", var_min2 * 3600.0)
        if self.variance <= 0 and self.family == "lognormal":
            raise ConfigError(f"variance must be positive, got {self.variance}")


class LifetimeDistribution:
    """Seeded sampler of session lifetimes (seconds)."""

    def __init__(self, config: LifetimeConfig, rng: random.Random) -> None:
        self.config = config
        self._rng = rng
        if config.family == "lognormal":
            # Solve lognormal (mu, sigma) from mean m and variance v:
            #   m = exp(mu + sigma^2/2),  v = (exp(sigma^2)-1) m^2
            m, v = config.mean_s, config.variance
            sigma2 = math.log(1.0 + v / (m * m))
            self._sigma = math.sqrt(sigma2)
            self._mu = math.log(m) - sigma2 / 2.0

    def sample(self) -> float:
        cfg = self.config
        if cfg.family == "fixed":
            value = cfg.mean_s
        elif cfg.family == "exponential":
            value = self._rng.expovariate(1.0 / cfg.mean_s)
        else:
            value = self._rng.lognormvariate(self._mu, self._sigma)
        return max(cfg.min_lifetime_s, value)

    def sample_many(self, n: int) -> list:
        if n < 0:
            raise ConfigError(f"n must be non-negative, got {n}")
        return [self.sample() for _ in range(n)]
