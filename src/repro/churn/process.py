"""Join/leave churn process over an :class:`OverlayNetwork`.

Each logical peer slot cycles: online for a sampled lifetime, then offline
for a sampled off-time, then rejoins through the host cache with a fresh
neighbor set. Bhagwan et al. (cited in Section 3.5) observe ~6.4
join/leave cycles per day per host, i.e. off-times on the same scale as
lifetimes; the default off-time distribution mirrors the lifetime one.

The process emits join/leave notifications so DD-POLICE engines can attach
to arriving peers and buddy groups can go stale realistically (the source
of the misjudgment probability discussed in Section 3.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.churn.lifetimes import LifetimeConfig, LifetimeDistribution
from repro.errors import ConfigError
from repro.overlay.hostcache import HostCache
from repro.overlay.ids import PeerId
from repro.overlay.network import OverlayNetwork
from repro.simkit.engine import Simulator


@dataclass(frozen=True)
class ChurnConfig:
    """Churn parameters."""

    lifetime: LifetimeConfig = LifetimeConfig()
    offtime: LifetimeConfig = LifetimeConfig(family="exponential", mean_s=600.0)
    join_degree_min: int = 3
    join_degree_max: int = 4
    enabled: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.join_degree_min < 1:
            raise ConfigError("join_degree_min must be >= 1")
        if self.join_degree_max < self.join_degree_min:
            raise ConfigError("join_degree_max < join_degree_min")


class ChurnProcess:
    """Drives on/off cycling of every peer in the network."""

    def __init__(
        self,
        sim: Simulator,
        network: OverlayNetwork,
        config: ChurnConfig,
        *,
        rng: Optional[random.Random] = None,
        pinned: Optional[Set[PeerId]] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.config = config
        self._rng = rng or random.Random(config.seed)
        self._lifetimes = LifetimeDistribution(config.lifetime, self._rng)
        self._offtimes = LifetimeDistribution(config.offtime, self._rng)
        self.hostcache = HostCache(self._rng)
        #: Peers that never churn (e.g. to keep attackers persistent in
        #: specific scenarios). Empty by default: attackers churn too.
        self.pinned: Set[PeerId] = set(pinned or ())
        #: Fail-stopped peers (see ``fail_stop``): withheld from the host
        #: cache and never allowed to rejoin.
        self.failed: Set[PeerId] = set()
        self.join_listeners: List[Callable[[PeerId], None]] = []
        self.leave_listeners: List[Callable[[PeerId], None]] = []
        self.joins = 0
        self.leaves = 0

        for pid, peer in network.peers.items():
            if peer.online:
                self.hostcache.mark_online(pid)

    def start(self) -> None:
        """Arm a leave timer for every online peer."""
        if not self.config.enabled:
            return
        for pid, peer in self.network.peers.items():
            if peer.online and pid not in self.pinned:
                # Stagger initial departures: residual lifetimes.
                self.sim.schedule_in(self._lifetimes.sample() * self._rng.random() + 1.0,
                                     self._leave, pid)

    # ------------------------------------------------------------------
    def depart(self, pid: PeerId, *, rejoin_after_s: Optional[float] = None) -> None:
        """Voluntary leave initiated by the peer itself.

        The same teardown/rejoin path as sampled churn -- neighbors
        observe a normal close, content relocates, the host cache hands
        out fresh neighbors on return -- but the off-time can be pinned
        (``rejoin_after_s``) instead of sampled. Used by churn-evading
        attack agents that time their own leave/rejoin cycle; pin such
        peers (:attr:`pinned`) so the sampled cycle does not double-drive
        them.
        """
        if rejoin_after_s is not None and rejoin_after_s <= 0:
            raise ConfigError("rejoin_after_s must be positive")
        self._leave(pid, rejoin_after_s=rejoin_after_s)

    def _leave(
        self, pid: PeerId, rejoin_after_s: Optional[float] = None
    ) -> None:
        peer = self.network.peers[pid]
        if not peer.online:
            return
        self.leaves += 1
        self.hostcache.mark_offline(pid)
        # Tear down all connections; neighbors observe a normal close.
        for nb in list(peer.neighbors):
            self.network.disconnect(pid, nb)
        # Content moves to alive peers so success-rate baselines stay flat.
        alive = [p.value for p, q in self.network.peers.items() if q.online and p != pid]
        self.network.content.relocate_replicas(pid.value, alive, self._rng)
        peer.go_offline()
        for listener in self.leave_listeners:
            listener(pid)
        offtime = (
            self._offtimes.sample() if rejoin_after_s is None else rejoin_after_s
        )
        self.sim.schedule_in(offtime, self._join, pid)

    def fail_stop(self, pid: PeerId) -> None:
        """Mark ``pid`` permanently dead (fault-injected crash).

        The caller takes the peer offline; this only prevents any pending
        or future ``_join`` from resurrecting it and keeps it out of the
        host cache's candidate set.
        """
        self.failed.add(pid)
        self.hostcache.mark_offline(pid)

    def _join(self, pid: PeerId) -> None:
        peer = self.network.peers[pid]
        if peer.online or pid in self.failed:
            return
        self.joins += 1
        peer.go_online()
        want = self._rng.randint(self.config.join_degree_min, self.config.join_degree_max)
        degree_of: Dict[PeerId, int] = {
            p: len(q.neighbors) for p, q in self.network.peers.items() if q.online
        }
        for nb in self.hostcache.candidates(want, exclude={pid}, degree_of=degree_of):
            self.network.connect(pid, nb)
        self.hostcache.mark_online(pid)
        for listener in self.join_listeners:
            listener(pid)
        if pid not in self.pinned:
            self.sim.schedule_in(self._lifetimes.sample(), self._leave, pid)

    # ------------------------------------------------------------------
    def online_fraction(self) -> float:
        peers = self.network.peers
        if not peers:
            return 0.0
        return sum(1 for p in peers.values() if p.online) / len(peers)
