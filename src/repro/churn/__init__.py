"""Peer churn: session lifetimes and the on/off join-leave process.

Section 3.5: "We simulate the joining and leaving behavior of peers via
turning on/off logical peers. ... The lifetime is generated according to
the distribution observed in [19]. The mean of the distribution is chosen
to be 10 minutes. The value of the variance is chosen to be half of the
value of the mean."
"""

from repro.churn.lifetimes import LifetimeConfig, LifetimeDistribution
from repro.churn.process import ChurnConfig, ChurnProcess

__all__ = [
    "LifetimeConfig",
    "LifetimeDistribution",
    "ChurnConfig",
    "ChurnProcess",
]
