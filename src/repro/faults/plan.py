"""Declarative fault model.

A :class:`FaultPlan` is a frozen bundle of rules, each scoped to a time
window of the simulation and (for message-path rules) to a set of
message kinds and/or directed links. Rules:

* :class:`LossRule` -- drop a matching in-flight message with some
  probability (global, per-link, or per-message-kind loss).
* :class:`DuplicateRule` -- deliver a matching message twice.
* :class:`DelayRule` -- add extra one-hop latency to a matching message;
  large spreads reorder control traffic.
* :class:`CrashRule` -- fail-stop: victims drop off the network silently
  at a scheduled time and never return (no Bye, neighbors are not
  notified -- they discover the death through silence).
* :class:`FailSlowRule` -- degrade victims' query-processing capacity by
  a factor for the duration of a window.

Plans are inert data; the :class:`~repro.faults.injector.FaultInjector`
executes them. An empty plan (``FaultPlan()``) injects nothing and adds
no randomness, so default runs are bit-identical with or without the
fault layer compiled in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.errors import ConfigError
from repro.overlay.message import MessageKind

#: The DD-POLICE control plane: everything that is not search traffic.
CONTROL_KINDS: FrozenSet[MessageKind] = frozenset(
    {
        MessageKind.PING,
        MessageKind.PONG,
        MessageKind.BYE,
        MessageKind.NEIGHBOR_LIST,
        MessageKind.NEIGHBOR_TRAFFIC,
    }
)


@dataclass(frozen=True)
class FaultWindow:
    """Half-open activity interval ``[start_s, end_s)`` in sim seconds."""

    start_s: float = 0.0
    end_s: float = math.inf

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigError(f"start_s must be non-negative, got {self.start_s}")
        if self.end_s <= self.start_s:
            raise ConfigError(
                f"end_s ({self.end_s}) must exceed start_s ({self.start_s})"
            )

    def active(self, now: float) -> bool:
        return self.start_s <= now < self.end_s

    @classmethod
    def minutes(cls, start_min: float, end_min: float = math.inf) -> "FaultWindow":
        """Convenience: a window expressed in minutes ("minutes 10-20")."""
        end = math.inf if math.isinf(end_min) else end_min * 60.0
        return cls(start_s=start_min * 60.0, end_s=end)


def _check_probability(p: float, name: str) -> None:
    if not (0.0 <= p <= 1.0):
        raise ConfigError(f"{name} must be in [0, 1], got {p}")


@dataclass(frozen=True)
class LossRule:
    """Drop matching messages with ``probability``.

    ``kinds=None`` matches every message kind; ``links=None`` matches
    every directed (src, dst) peer pair (peer ids as ints).
    """

    probability: float
    window: FaultWindow = field(default_factory=FaultWindow)
    kinds: Optional[FrozenSet[MessageKind]] = None
    links: Optional[FrozenSet[Tuple[int, int]]] = None

    def __post_init__(self) -> None:
        _check_probability(self.probability, "loss probability")

    def matches(self, now: float, src: int, dst: int, kind: MessageKind) -> bool:
        if not self.window.active(now):
            return False
        if self.kinds is not None and kind not in self.kinds:
            return False
        if self.links is not None and (src, dst) not in self.links:
            return False
        return True


@dataclass(frozen=True)
class DuplicateRule:
    """Deliver matching messages twice with ``probability``.

    The duplicate arrives up to ``max_extra_delay_s`` after the original,
    so duplication composes with reordering.
    """

    probability: float
    window: FaultWindow = field(default_factory=FaultWindow)
    kinds: Optional[FrozenSet[MessageKind]] = None
    max_extra_delay_s: float = 0.5

    def __post_init__(self) -> None:
        _check_probability(self.probability, "duplicate probability")
        if self.max_extra_delay_s < 0:
            raise ConfigError("max_extra_delay_s must be non-negative")

    def matches(self, now: float, kind: MessageKind) -> bool:
        if not self.window.active(now):
            return False
        return self.kinds is None or kind in self.kinds


@dataclass(frozen=True)
class DelayRule:
    """Add uniform extra latency in ``[min_extra_s, max_extra_s]``.

    Applied with ``probability`` per matching message; a spread larger
    than the inter-message spacing reorders deliveries.
    """

    probability: float
    min_extra_s: float = 0.0
    max_extra_s: float = 1.0
    window: FaultWindow = field(default_factory=FaultWindow)
    kinds: Optional[FrozenSet[MessageKind]] = None

    def __post_init__(self) -> None:
        _check_probability(self.probability, "delay probability")
        if self.min_extra_s < 0:
            raise ConfigError("min_extra_s must be non-negative")
        if self.max_extra_s < self.min_extra_s:
            raise ConfigError("max_extra_s must be >= min_extra_s")

    def matches(self, now: float, kind: MessageKind) -> bool:
        if not self.window.active(now):
            return False
        return self.kinds is None or kind in self.kinds


@dataclass(frozen=True)
class CrashRule:
    """Fail-stop crash of ``count`` random peers (or explicit ``peers``)
    at time ``at_s``. Victims never rejoin, even under churn."""

    at_s: float
    count: int = 0
    peers: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ConfigError(f"at_s must be non-negative, got {self.at_s}")
        if self.count < 0:
            raise ConfigError(f"count must be non-negative, got {self.count}")
        if self.count == 0 and not self.peers:
            raise ConfigError("crash rule needs count > 0 or explicit peers")


@dataclass(frozen=True)
class FailSlowRule:
    """Degrade processing capacity of ``count`` random peers (or explicit
    ``peers``) by ``factor`` for the duration of ``window``."""

    factor: float
    window: FaultWindow = field(default_factory=FaultWindow)
    count: int = 0
    peers: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not (0.0 < self.factor < 1.0):
            raise ConfigError(
                f"fail-slow factor must be in (0, 1), got {self.factor}"
            )
        if self.count < 0:
            raise ConfigError(f"count must be non-negative, got {self.count}")
        if self.count == 0 and not self.peers:
            raise ConfigError("fail-slow rule needs count > 0 or explicit peers")
        if math.isinf(self.window.end_s):
            return  # restoring at infinity simply never happens


@dataclass(frozen=True)
class FaultPlan:
    """A complete fault schedule for one run. Empty by default."""

    loss: Tuple[LossRule, ...] = ()
    duplicate: Tuple[DuplicateRule, ...] = ()
    delay: Tuple[DelayRule, ...] = ()
    crashes: Tuple[CrashRule, ...] = ()
    fail_slow: Tuple[FailSlowRule, ...] = ()

    @property
    def enabled(self) -> bool:
        """True if any rule is present."""
        return bool(
            self.loss or self.duplicate or self.delay or self.crashes or self.fail_slow
        )

    # ------------------------------------------------------------------
    # common shorthands
    # ------------------------------------------------------------------
    @classmethod
    def message_loss(
        cls, probability: float, *, start_s: float = 0.0, end_s: float = math.inf
    ) -> "FaultPlan":
        """Uniform loss on every message (data and control planes)."""
        return cls(loss=(LossRule(probability, FaultWindow(start_s, end_s)),))

    @classmethod
    def control_loss(
        cls, probability: float, *, start_s: float = 0.0, end_s: float = math.inf
    ) -> "FaultPlan":
        """Loss restricted to the DD-POLICE control plane (the paper's
        search traffic is untouched; only protocol evidence is degraded)."""
        return cls(
            loss=(
                LossRule(probability, FaultWindow(start_s, end_s), kinds=CONTROL_KINDS),
            )
        )

    def merged(self, other: "FaultPlan") -> "FaultPlan":
        """Union of two plans' rules."""
        return FaultPlan(
            loss=self.loss + other.loss,
            duplicate=self.duplicate + other.duplicate,
            delay=self.delay + other.delay,
            crashes=self.crashes + other.crashes,
            fail_slow=self.fail_slow + other.fail_slow,
        )
