"""Fault injection: degraded-network conditions for the message-level DES.

The paper evaluates DD-POLICE on lossless, instantly-delivered control
messages; its own evidence rule ("missing report => assume 0", Section
3.3) makes the judgment error rates sensitive to lost or late
Neighbor_Traffic messages. This package models the conditions a real
overlay runs under -- probabilistic loss, duplication, latency spikes
and reordering, fail-stop crashes, fail-slow peers -- as a scriptable
:class:`FaultPlan` executed by a :class:`FaultInjector` hooked into
:meth:`repro.overlay.network.OverlayNetwork.transmit` and the churn
process. All randomness is drawn from named ``simkit.rng`` streams so
any faulted run replays exactly from its seed.
"""

from repro.faults.plan import (
    CONTROL_KINDS,
    CrashRule,
    DelayRule,
    DuplicateRule,
    FailSlowRule,
    FaultPlan,
    FaultWindow,
    LossRule,
)
from repro.faults.injector import FaultInjector, FaultStats

__all__ = [
    "CONTROL_KINDS",
    "CrashRule",
    "DelayRule",
    "DuplicateRule",
    "FailSlowRule",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "FaultWindow",
    "LossRule",
]
