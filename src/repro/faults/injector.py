"""Fault plan execution against a live :class:`OverlayNetwork`.

The injector sits on the network's transmit path (loss, duplication,
latency) and on the simulator clock (crashes, fail-slow windows). Every
random draw comes from a named ``simkit.rng`` stream -- ``faults.loss``,
``faults.duplicate``, ``faults.delay``, ``faults.crash``,
``faults.failslow`` -- so a faulted run is reproducible from its seed
and adding one fault category never perturbs the draws of another.

Fail-stop semantics: a crashed peer simply goes offline. No Bye is sent
and neighbors are *not* notified -- their neighbor sets keep the dead
entry and messages to it vanish, exactly the silence DD-POLICE's
"missing report => assume 0" rule is sensitive to. With a churn process
attached, crashed peers are withheld from the host cache and never
rejoin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigError
from repro.faults.plan import CrashRule, FailSlowRule, FaultPlan
from repro.overlay.ids import PeerId
from repro.overlay.message import Message
from repro.simkit.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.churn.process import ChurnProcess
    from repro.overlay.network import OverlayNetwork


@dataclass
class FaultStats:
    """What the injector actually did (per run)."""

    messages_dropped: int = 0
    messages_duplicated: int = 0
    messages_delayed: int = 0
    crashes: int = 0
    fail_slow_applied: int = 0
    fail_slow_restored: int = 0
    dropped_by_kind: Dict[str, int] = field(default_factory=dict)


class FaultInjector:
    """Executes one :class:`FaultPlan` against one network."""

    def __init__(self, plan: FaultPlan, rng_registry: RngRegistry) -> None:
        self.plan = plan
        self.rngs = rng_registry
        self.stats = FaultStats()
        self.crashed: Set[PeerId] = set()
        self.network: Optional["OverlayNetwork"] = None
        self._churn: Optional["ChurnProcess"] = None
        self._protected: Set[PeerId] = set()
        # Original processing rates of currently-degraded peers.
        self._degraded: Dict[PeerId, float] = {}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(
        self,
        network: "OverlayNetwork",
        *,
        churn: Optional["ChurnProcess"] = None,
        protected: Tuple[PeerId, ...] = (),
    ) -> None:
        """Hook into ``network`` and arm the scheduled rules.

        ``protected`` peers are never selected as random crash or
        fail-slow victims (explicit ``peers`` lists override this).
        """
        if self.network is not None:
            raise ConfigError("injector is already attached")
        self.network = network
        self._churn = churn
        self._protected = set(protected)
        network.fault_injector = self
        for rule in self.plan.crashes:
            network.sim.schedule_at(rule.at_s, self._execute_crash, rule)
        for rule in self.plan.fail_slow:
            network.sim.schedule_at(rule.window.start_s, self._begin_fail_slow, rule)

    # ------------------------------------------------------------------
    # transmit-path faults (called by OverlayNetwork.transmit)
    # ------------------------------------------------------------------
    def shape_transmit(
        self, src: PeerId, dst: PeerId, msg: Message, delay: float
    ) -> Optional[float]:
        """Apply loss/delay/duplication to one message.

        Returns the (possibly inflated) delivery delay, or ``None`` if
        the message is dropped in flight.
        """
        assert self.network is not None, "injector not attached"
        now = self.network.now
        tracer = self.network.tracer
        for rule in self.plan.loss:
            if rule.matches(now, src.value, dst.value, msg.kind):
                if self.rngs.stream("faults.loss").random() < rule.probability:
                    self.stats.messages_dropped += 1
                    by_kind = self.stats.dropped_by_kind
                    by_kind[msg.kind.name] = by_kind.get(msg.kind.name, 0) + 1
                    if tracer is not None:
                        tracer.event(
                            "fault.drop",
                            t=now,
                            src=src.value,
                            dst=dst.value,
                            msg=msg.kind.name,
                        )
                    return None
        for rule in self.plan.delay:
            if rule.matches(now, msg.kind):
                rng = self.rngs.stream("faults.delay")
                if rng.random() < rule.probability:
                    extra_s = rng.uniform(rule.min_extra_s, rule.max_extra_s)
                    delay += extra_s
                    self.stats.messages_delayed += 1
                    if tracer is not None:
                        tracer.event(
                            "fault.delay",
                            t=now,
                            src=src.value,
                            dst=dst.value,
                            msg=msg.kind.name,
                            extra_s=extra_s,
                        )
        for rule in self.plan.duplicate:
            if rule.matches(now, msg.kind):
                rng = self.rngs.stream("faults.duplicate")
                if rng.random() < rule.probability:
                    extra = delay + (
                        rng.uniform(0.0, rule.max_extra_delay_s)
                        if rule.max_extra_delay_s > 0
                        else 0.0
                    )
                    self.network.sim.schedule_in(
                        extra, self.network._deliver, src, dst, msg
                    )
                    self.stats.messages_duplicated += 1
                    self.network.stats.messages_duplicated_fault += 1
                    if tracer is not None:
                        tracer.event(
                            "fault.duplicate",
                            t=now,
                            src=src.value,
                            dst=dst.value,
                            msg=msg.kind.name,
                        )
        return delay

    # ------------------------------------------------------------------
    # fail-stop crashes
    # ------------------------------------------------------------------
    def _select_victims(self, rule_peers: Tuple[int, ...], count: int) -> List[PeerId]:
        assert self.network is not None
        if rule_peers:
            return [PeerId(v) for v in rule_peers]
        candidates = sorted(
            (
                pid
                for pid, peer in self.network.peers.items()
                if peer.online and pid not in self.crashed and pid not in self._protected
            ),
            key=lambda p: p.value,
        )
        k = min(count, len(candidates))
        if k == 0:
            return []
        return self.rngs.stream("faults.crash").sample(candidates, k)

    def _execute_crash(self, rule: CrashRule) -> None:
        for pid in self._select_victims(rule.peers, rule.count):
            self.crash_peer(pid)

    def crash_peer(self, pid: PeerId) -> None:
        """Fail-stop ``pid`` now: offline, silently, forever."""
        assert self.network is not None
        peer = self.network.peers[pid]
        self.crashed.add(pid)
        if self._churn is not None:
            self._churn.fail_stop(pid)
        if not peer.online:
            return
        # No Bye, no disconnect notifications: neighbors keep their stale
        # entries and only ever observe silence.
        peer.go_offline()
        self.stats.crashes += 1
        if self.network.tracer is not None:
            self.network.tracer.event(
                "fault.crash", t=self.network.now, peer=pid.value
            )

    # ------------------------------------------------------------------
    # fail-slow windows
    # ------------------------------------------------------------------
    def _begin_fail_slow(self, rule: FailSlowRule) -> None:
        assert self.network is not None
        if rule.peers:
            victims = [PeerId(v) for v in rule.peers]
        else:
            candidates = sorted(
                (
                    pid
                    for pid, peer in self.network.peers.items()
                    if peer.online
                    and pid not in self._degraded
                    and pid not in self._protected
                ),
                key=lambda p: p.value,
            )
            victims = self.rngs.stream("faults.failslow").sample(
                candidates, min(rule.count, len(candidates))
            )
        for pid in victims:
            if pid in self._degraded:
                continue
            bucket = self.network.peers[pid].processing
            self._degraded[pid] = bucket.rate_per_min
            bucket.rate_per_min = bucket.rate_per_min * rule.factor
            self.stats.fail_slow_applied += 1
            if self.network.tracer is not None:
                self.network.tracer.event(
                    "fault.failslow.begin",
                    t=self.network.now,
                    peer=pid.value,
                    factor=rule.factor,
                )
        if rule.window.end_s != float("inf"):
            self.network.sim.schedule_at(
                rule.window.end_s, self._end_fail_slow, tuple(victims)
            )

    def _end_fail_slow(self, victims: Tuple[PeerId, ...]) -> None:
        assert self.network is not None
        for pid in victims:
            original = self._degraded.pop(pid, None)
            if original is None:
                continue
            self.network.peers[pid].processing.rate_per_min = original
            self.stats.fail_slow_restored += 1
            if self.network.tracer is not None:
                self.network.tracer.event(
                    "fault.failslow.end", t=self.network.now, peer=pid.value
                )

    # ------------------------------------------------------------------
    def degraded_peers(self) -> Set[PeerId]:
        """Peers currently running with reduced processing capacity."""
        return set(self._degraded)
